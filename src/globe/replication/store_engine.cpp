#include "globe/replication/store_engine.hpp"

#include <algorithm>

#include "globe/check/monitor.hpp"
#include "globe/obs/trace.hpp"
#include "globe/util/assert.hpp"
#include "globe/util/log.hpp"

namespace globe::replication {

using core::AccessTransfer;
using core::CoherenceTransfer;
using core::OutdateReaction;
using core::Propagation;
using core::StoreScope;
using core::TransferInitiative;
using core::TransferInstant;
using coherence::ObjectModel;

namespace {

[[nodiscard]] std::uint64_t addr_key(const Address& a) {
  return (static_cast<std::uint64_t>(a.node) << 16) | a.port;
}

[[nodiscard]] Address key_addr(std::uint64_t key) {
  Address a;
  a.node = static_cast<NodeId>(key >> 16);
  a.port = static_cast<PortId>(key & 0xFFFF);
  return a;
}

// Lifecycle span for one write at this store. The trace id is derived
// from the WriteId, so spans join the write's trace even on paths that
// carried no context (lazy flush, anti-entropy); the parent links only
// when the calling thread's context belongs to the same trace (a batch
// may deliver records of several traces under one envelope).
void trace_write_span(obs::SpanKind kind, StoreId store, ObjectId object,
                      const web::WriteId& wid, std::uint64_t detail) {
  obs::Tracer& t = obs::Tracer::instance();
  if (!t.enabled()) return;
  const std::uint64_t trace = obs::trace_of(wid.client, wid.seq);
  if (!t.sampled(trace)) return;
  const obs::TraceContext ctx = obs::current_context();
  obs::Span s;
  s.kind = kind;
  s.trace_id = trace;
  s.parent_id = ctx.trace_id == trace ? ctx.span_id : 0;
  s.ts_us = t.now_us();
  s.actor = store;
  s.object = object;
  s.detail = detail;
  t.emit(s);
}

}  // namespace

StoreEngine::StoreEngine(const TransportFactory& factory, sim::Simulator& sim,
                         StoreConfig config, coherence::History* history,
                         metrics::MetricsSink* metrics)
    : sim_(sim),
      config_(std::move(config)),
      traffic_(metrics),
      comm_(factory, &sim, &traffic_),
      history_(history),
      metrics_(metrics) {
  comm_.set_delivery_handler(
      [this](const Address& from, const msg::EnvelopeView& env) {
        on_message(from, env);
      });
  // Seed the object table with the legacy single-object slice of the
  // store config; sharded deployments add_object() the rest.
  def_ = &create_object(config_.object_config());
  GLOBE_CHECK_HOOK(note_owner_context(this, config_.store_id, 0));
  configure_timers();
  start_membership();
}

StoreEngine::~StoreEngine() {
  // Drop the invariant monitors keyed on this engine and its object
  // states: a later allocation at the same address starts clean.
  for (auto& [id, o] : objects_) check::release(o.get());
  check::release(this);
}

StoreEngine::ObjectState& StoreEngine::create_object(const ObjectConfig& cfg) {
  GLOBE_ASSERT_MSG(cfg.policy.validate().empty(),
                   "invalid replication policy");
  GLOBE_ASSERT_MSG(cfg.is_primary || cfg.upstream.valid(),
                   "non-primary store needs an upstream");
  GLOBE_ASSERT_MSG(objects_.count(cfg.object) == 0,
                   "duplicate object id on one store");
  auto state = std::make_unique<ObjectState>();
  ObjectState& o = *state;
  o.cfg = cfg;
  objects_.emplace(cfg.object, std::move(state));
  // Trip reports for monitors keyed on this object state carry the
  // store id + view epoch stamp (refreshed on every view adoption).
  GLOBE_CHECK_HOOK(note_owner_context(&o, config_.store_id, view_epoch_));

  o.orderer = enforces_model(o) ? make_orderer(o.cfg.policy.model)
              : o.cfg.policy.model == ObjectModel::kEventual
                  ? make_orderer(ObjectModel::kEventual)
                  : std::make_unique<FifoOrderer>();

  if (o.cfg.is_primary || o.cfg.cache_mode != CacheMode::kGlobe ||
      !o.cfg.auto_subscribe) {
    o.ready = true;
  } else {
    subscribe_to_upstream(o);
  }
  return o;
}

void StoreEngine::add_object(const ObjectConfig& cfg) {
  create_object(cfg);
  // The new object may need a timer the current set lacks (or a shorter
  // period than the current ticks).
  configure_timers();
}

std::vector<ObjectId> StoreEngine::object_ids() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, o] : objects_) ids.push_back(id);
  return ids;
}

StoreEngine::ObjectState* StoreEngine::find_object(ObjectId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

const StoreEngine::ObjectState* StoreEngine::find_object(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

StoreEngine::ObjectState& StoreEngine::obj(ObjectId id) {
  ObjectState* o = find_object(id);
  GLOBE_ASSERT_MSG(o != nullptr, "unknown object id");
  return *o;
}

const StoreEngine::ObjectState& StoreEngine::obj(ObjectId id) const {
  const ObjectState* o = find_object(id);
  GLOBE_ASSERT_MSG(o != nullptr, "unknown object id");
  return *o;
}

const web::WebDocument& StoreEngine::document(ObjectId id) const {
  return obj(id).semantics.document();
}

const coherence::VectorClock& StoreEngine::applied_clock(ObjectId id) const {
  return obj(id).applied_clock;
}

std::uint64_t StoreEngine::applied_gseq(ObjectId id) const {
  return obj(id).applied_gseq;
}

std::size_t StoreEngine::subscriber_count(ObjectId id) const {
  return obj(id).subscribers.size();
}

bool StoreEngine::ready(ObjectId id) const { return obj(id).ready; }

const WriteLog& StoreEngine::write_log(ObjectId id) const {
  return obj(id).log;
}

std::size_t StoreEngine::parked_requests() const {
  std::size_t n = 0;
  for (const auto& [id, o] : objects_) n += o->parked.size();
  return n;
}

std::uint64_t StoreEngine::reads_served() const {
  std::uint64_t n = 0;
  for (const auto& [id, o] : objects_) n += o->reads_served;
  return n;
}

std::uint64_t StoreEngine::writes_applied() const {
  std::uint64_t n = 0;
  for (const auto& [id, o] : objects_) n += o->writes_applied;
  return n;
}

void StoreEngine::configure_timers() {
  lazy_timer_.reset();
  pull_timer_.reset();
  heartbeat_timer_.reset();

  // One timer set serves the whole object table: each timer runs at the
  // minimum period any hosted object asks for, and its tick visits every
  // object that qualifies (the per-object guards make extra visits
  // no-ops). With one object this degenerates to the classic behaviour.
  std::optional<sim::SimDuration> lazy_period;
  std::optional<sim::SimDuration> pull_period;
  std::optional<sim::SimDuration> beat_period;
  const auto take_min = [](std::optional<sim::SimDuration>& slot,
                           sim::SimDuration d) {
    if (!slot.has_value() || d < *slot) slot = d;
  };
  for (const auto& [id, op] : objects_) {
    const ObjectState& o = *op;
    const auto& p = o.cfg.policy;
    const bool is_globe_cache = o.cfg.cache_mode == CacheMode::kGlobe;
    // Lazy push flush timer: any store that may propagate data.
    if (p.initiative == TransferInitiative::kPush &&
        p.instant == TransferInstant::kLazy && is_globe_cache) {
      take_min(lazy_period, p.lazy_period);
    }
    // Pull poll timer: non-primary Globe stores poll their upstream.
    if (p.initiative == TransferInitiative::kPull && !o.cfg.is_primary &&
        is_globe_cache) {
      take_min(pull_period, p.lazy_period);
    }
    // Heartbeat clock advertisement: with push + demand reaction, a
    // subscriber that lost the *last* pushes of a burst would never
    // learn it is behind (gap detection needs a later message). A
    // periodic Notify carrying the sender's clock closes that window —
    // this is what makes reliability a genuine side effect of the
    // coherence model over lossy transports (Section 4.2).
    if (p.initiative == TransferInitiative::kPush &&
        p.object_outdate_reaction == OutdateReaction::kDemand &&
        is_globe_cache) {
      take_min(beat_period, p.instant == TransferInstant::kLazy
                                ? p.lazy_period
                                : sim::SimDuration::millis(500));
    }
  }
  if (lazy_period.has_value()) {
    lazy_timer_.emplace(sim_, *lazy_period, [this] { flush_lazy_all(); });
    lazy_timer_->start();
  }
  if (pull_period.has_value()) {
    pull_timer_.emplace(sim_, *pull_period, [this] {
      for (auto& [id, op] : objects_) {
        ObjectState& o = *op;
        if (o.cfg.policy.initiative == TransferInitiative::kPull &&
            !o.cfg.is_primary && o.cfg.cache_mode == CacheMode::kGlobe) {
          pull_from_upstream(o);
        }
      }
    });
    pull_timer_->start();
  }
  if (beat_period.has_value()) {
    heartbeat_timer_.emplace(sim_, *beat_period, [this] {
      for (auto& [id, op] : objects_) {
        ObjectState& o = *op;
        if (o.cfg.policy.initiative == TransferInitiative::kPush &&
            o.cfg.policy.object_outdate_reaction == OutdateReaction::kDemand &&
            o.cfg.cache_mode == CacheMode::kGlobe) {
          advertise_clock(o);
        }
      }
    });
    heartbeat_timer_->start();
  }
}

bool StoreEngine::update_policy(const core::ReplicationPolicy& policy) {
  return update_policy(*def_, policy);
}

bool StoreEngine::update_policy(ObjectState& o,
                                const core::ReplicationPolicy& policy) {
  if (policy.model != o.cfg.policy.model) return false;
  if (!policy.validate().empty()) return false;
  if (policy == o.cfg.policy) return true;

  // Drain anything queued under the old parameters, then switch.
  flush_lazy(o);
  o.cfg.policy = policy;
  if (&o == def_) config_.policy = policy;  // keep the legacy view in step
  configure_timers();

  // Propagate the strategy change through the object (downstream).
  for (const Subscriber& s : o.subscribers) {
    comm_.send_with(s.address, msg::MsgType::kPolicyUpdate, o.cfg.object,
                    [&](util::Writer& w) { policy.encode(w); });
  }
  return true;
}

void StoreEngine::handle_policy_update(ObjectState& o, const Address& /*from*/,
                                       const msg::EnvelopeView& env) {
  util::Reader r{env.body};
  const auto policy = core::ReplicationPolicy::decode(r);
  update_policy(o, policy);
}

bool StoreEngine::enforces_model(const ObjectState& o) const {
  switch (o.cfg.policy.store_scope) {
    case StoreScope::kPermanent:
      return config_.store_class == naming::StoreClass::kPermanent;
    case StoreScope::kPermanentAndObject:
      return config_.store_class != naming::StoreClass::kClientInitiated;
    case StoreScope::kAll:
      return true;
  }
  return true;
}

bool StoreEngine::multi_master(const ObjectState& o) {
  return o.cfg.policy.model == ObjectModel::kCausal ||
         o.cfg.policy.model == ObjectModel::kEventual;
}

bool StoreEngine::accepts_writes(const ObjectState& o) const {
  if (multi_master(o)) return true;
  return o.cfg.is_primary;
}

void StoreEngine::finalize_propagation() {
  // One synchronous flush/pull so Testbed::settle() can drain in-flight
  // coherence state; the periodic timers keep running (they are
  // background events and never block quiescence on their own).
  if (!alive_ || departed_) return;
  for (auto& [id, op] : objects_) {
    ObjectState& o = *op;
    if (o.cfg.policy.initiative == TransferInitiative::kPull &&
        !o.cfg.is_primary && o.cfg.cache_mode == CacheMode::kGlobe) {
      pull_from_upstream(o);
    }
  }
  flush_lazy_all();
}

naming::ContactPoint StoreEngine::contact() const {
  naming::ContactPoint c;
  c.address = comm_.local_address();
  c.store_class = config_.store_class;
  c.store_id = config_.store_id;
  c.is_primary = config_.is_primary;
  return c;
}

void StoreEngine::seed(const std::string& page, const std::string& content,
                       const std::string& mime) {
  seed(def_->cfg.object, page, content, mime);
}

void StoreEngine::seed(ObjectId id, const std::string& page,
                       const std::string& content, const std::string& mime) {
  ObjectState& o = obj(id);
  GLOBE_ASSERT_MSG(o.cfg.is_primary, "seed() is a primary-store operation");
  web::WriteRecord rec;
  rec.wid = coherence::WriteId{0, o.applied_clock.get(0) + 1};
  rec.op = web::WriteOp::kPut;
  rec.page = page;
  rec.content = content;
  rec.mime = mime;
  rec.issued_at_us = sim_.now().count_micros();
  rec.lamport = ++o.lamport;
  std::vector<web::WriteRecord> ready;
  if (o.cfg.policy.model == ObjectModel::kSequential) {
    rec.global_seq = o.next_gseq + 1;
  }
  o.orderer->admit(std::move(rec), ready);
  apply_ready(o, std::move(ready));
}

// ---------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------

void StoreEngine::on_message(const Address& from,
                             const msg::EnvelopeView& env) {
  // A crash-stopped or departed store processes nothing; the network
  // layer usually drops its traffic already (node down), this guards the
  // co-located and loopback paths.
  if (!alive_ || departed_) return;

  // Membership traffic names the scope, not a hosted object: one view
  // message fans out to the whole object table.
  switch (env.type) {
    case msg::MsgType::kViewChange:
      apply_view(membership::ViewMsg::decode(env.body).view);
      return;
    case msg::MsgType::kViewDelta:
      handle_view_delta(env);
      return;
    case msg::MsgType::kStabilityHorizon:
      handle_stability_horizon(env);
      return;
    default:
      break;
  }

  ObjectState* o = find_object(env.object);
  if (o == nullptr) {
    // Not our object (anymore): tell invoking clients so they re-resolve
    // placement and rebind; drop coherence traffic (stale fan-out).
    if (env.type == msg::MsgType::kInvokeRequest) {
      InvokeReply rep;
      rep.ok = false;
      rep.error = "unknown object";
      rep.store = config_.store_id;
      comm_.reply(from, msg::MsgType::kInvokeReply, env.object, env.request_id,
                  rep.encode());
    }
    return;
  }
  if (metrics_ != nullptr) {
    metrics_->record_shard_bytes(config_.shard, env.body.size());
  }
  switch (env.type) {
    case msg::MsgType::kInvokeRequest:
      handle_client_request(*o, from, env.request_id,
                            ClientRequest::decode(env.body));
      return;
    case msg::MsgType::kWriteForward:
      handle_write_forward(*o, from, env);
      return;
    case msg::MsgType::kUpdate:
      handle_update(*o, from, env);
      return;
    case msg::MsgType::kSnapshot:
      handle_snapshot(*o, env);
      return;
    case msg::MsgType::kInvalidate:
      handle_invalidate(*o, from, env);
      return;
    case msg::MsgType::kNotify:
      handle_notify(*o, from, env);
      return;
    case msg::MsgType::kFetchRequest:
      handle_fetch_request(*o, from, env);
      return;
    case msg::MsgType::kSubscribe:
      handle_subscribe(*o, from, env);
      return;
    case msg::MsgType::kAntiEntropyRequest:
      handle_anti_entropy(*o, from, env);
      return;
    case msg::MsgType::kSnapshotDeltaRequest:
      handle_snapshot_delta_request(*o, from, env);
      return;
    case msg::MsgType::kPolicyUpdate:
      handle_policy_update(*o, from, env);
      return;
    default:
      GLOBE_LOG_ERROR("store", "store %u: unexpected message type %s",
                      config_.store_id, msg::to_string(env.type));
  }
}

void StoreEngine::reply_invoke(ObjectState& o, const Address& to,
                               std::uint64_t request_id,
                               const InvokeReply& rep) {
  comm_.reply(to, msg::MsgType::kInvokeReply, o.cfg.object, request_id,
              rep.encode());
}

void StoreEngine::handle_client_request(ObjectState& o, const Address& from,
                                        std::uint64_t request_id,
                                        ClientRequest req) {
  if (!o.ready) {
    park(o, from, request_id, std::move(req));
    return;
  }
  if (req.inv.writes()) {
    if (accepts_writes(o)) {
      accept_write(o, from, request_id, std::move(req));
    } else {
      // Relay towards the accepting store; it replies to the origin.
      WriteForward fwd;
      fwd.origin = from;
      fwd.origin_request_id = request_id;
      fwd.request = std::move(req);
      comm_.send(o.cfg.upstream, msg::MsgType::kWriteForward, o.cfg.object,
                 fwd.encode());
    }
    return;
  }
  serve_read(o, from, request_id, req);
}

void StoreEngine::handle_write_forward(ObjectState& o, const Address& /*from*/,
                                       const msg::EnvelopeView& env) {
  if (accepts_writes(o)) {
    WriteForward fwd = WriteForward::decode(env.body);
    accept_write(o, fwd.origin, fwd.origin_request_id,
                 std::move(fwd.request));
  } else {
    // Relay the encoded body as-is; no need to decode it here.
    comm_.send_with(o.cfg.upstream, msg::MsgType::kWriteForward, o.cfg.object,
                    [&](util::Writer& w) { w.raw(env.body); });
  }
}

// ---------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------

void StoreEngine::accept_write(ObjectState& o, const Address& reply_to,
                               std::uint64_t request_id, ClientRequest req) {
  trace_write_span(obs::SpanKind::kStoreAccept, config_.store_id,
                   o.cfg.object, req.wid, 0);
  web::WriteRecord rec = o.semantics.to_record(req.inv);
  rec.wid = req.wid;
  rec.deps = req.deps;
  rec.ordered = req.ordered;
  rec.issued_at_us = req.issued_at_us;
  o.lamport = std::max(o.lamport, o.applied_clock.total()) + 1;
  rec.lamport = o.lamport;
  if (o.cfg.policy.model == ObjectModel::kSequential) {
    GLOBE_ASSERT_MSG(o.cfg.is_primary,
                     "sequential writes are accepted only at the primary");
    rec.global_seq = o.next_gseq + 1;
  }

  std::vector<web::WriteRecord> ready;
  Admission adm;
  if (rec.ordered && o.cfg.policy.model == ObjectModel::kEventual) {
    // Locally accepted ordered writes advance the SAME monotonic-writes
    // cursor as remote ones (admit_remote): a client that rebinds to
    // another store mid-session leaves a seq gap here, and the filter
    // must know which of its writes this store already carries.
    std::vector<web::WriteRecord> gated;
    adm = mw_gate(o, gated).admit(std::move(rec), gated);
    for (auto& g : gated) {
      if (g.wid == req.wid) rec = g;  // keep the stamped copy for the ack
      o.orderer->admit(std::move(g), ready);
    }
  } else {
    adm = o.orderer->admit(rec, ready);
  }
  switch (adm) {
    case Admission::kApplied:
      apply_ready(o, std::move(ready));
      // record_apply acked if it was registered; ack directly otherwise.
      {
        InvokeReply rep;
        rep.ok = true;
        rep.wid = req.wid;
        rep.global_seq =
            rec.global_seq != 0 ? rec.global_seq : o.applied_gseq;
        rep.store_clock = o.applied_clock;
        rep.store = config_.store_id;
        reply_invoke(o, reply_to, request_id, rep);
      }
      return;
    case Admission::kBuffered:
      // Ack once the record is finally applied.
      o.pending_write_acks[req.wid] = {reply_to, request_id};
      note_gaps(o);
      if (!o.cfg.is_primary &&
          o.cfg.policy.object_outdate_reaction == OutdateReaction::kDemand) {
        demand_fetch(o);
      }
      return;
    case Admission::kDuplicate:
    case Admission::kSuperseded: {
      // Idempotent/ignored writes still succeed from the client's view
      // (FIFO model: "the request is simply ignored").
      InvokeReply rep;
      rep.ok = true;
      rep.wid = req.wid;
      rep.global_seq = o.applied_gseq;
      rep.store_clock = o.applied_clock;
      rep.store = config_.store_id;
      reply_invoke(o, reply_to, request_id, rep);
      return;
    }
  }
}

void StoreEngine::record_snapshot_event(ObjectState& o) {
  if (history_ == nullptr) return;
  coherence::ApplyEvent e;
  e.at = sim_.now();
  e.store = config_.store_id;
  e.deps = o.applied_clock;
  e.global_seq = o.applied_gseq;
  e.from_snapshot = true;
  history_->record_apply(std::move(e));
}

void StoreEngine::record_apply(ObjectState& o, const web::WriteRecord& rec,
                               bool changed) {
  if (history_ != nullptr && changed) {
    coherence::ApplyEvent e;
    e.at = sim_.now();
    e.store = config_.store_id;
    e.wid = rec.wid;
    e.page = history_->intern(rec.page);
    e.deps = rec.deps;
    e.global_seq = rec.global_seq;
    history_->record_apply(std::move(e));
  }
  auto ack = o.pending_write_acks.find(rec.wid);
  if (ack != o.pending_write_acks.end()) {
    InvokeReply rep;
    rep.ok = true;
    rep.wid = rec.wid;
    rep.global_seq = rec.global_seq != 0 ? rec.global_seq : o.applied_gseq;
    rep.store_clock = o.applied_clock;
    rep.store = config_.store_id;
    reply_invoke(o, ack->second.first, ack->second.second, rep);
    o.pending_write_acks.erase(ack);
  }
}

void StoreEngine::apply_ready(ObjectState& o,
                              std::vector<web::WriteRecord> ready) {
  if (ready.empty()) return;
  std::vector<web::WriteRecord> applied;
  applied.reserve(ready.size());
  for (web::WriteRecord& rec : ready) {
    // The primary stamps the total-order position at apply time for the
    // primary-ordered models (sequential records were stamped earlier).
    if (o.cfg.is_primary && rec.global_seq == 0 && !multi_master(o)) {
      rec.global_seq = o.next_gseq + 1;
    }
    if (rec.global_seq > o.next_gseq) o.next_gseq = rec.global_seq;
    // The ordering authority releases the record into the total order.
    if (o.cfg.is_primary) {
      trace_write_span(obs::SpanKind::kOrder, config_.store_id, o.cfg.object,
                       rec.wid, rec.global_seq);
    }

    // State application. Multi-master models need convergent conflict
    // resolution: last-writer-wins with a Lamport clock. For the causal
    // model the Lamport order refines the causal order (the clock is
    // advanced on every receive), so LWW picks a causally-consistent
    // winner among concurrent writes and every replica converges.
    const bool is_eventual = o.cfg.policy.model == ObjectModel::kEventual;
    const bool is_causal = o.cfg.policy.model == ObjectModel::kCausal;
    bool changed = true;
    if (is_eventual || is_causal) {
      changed = o.semantics.apply_lww(rec);
    } else {
      o.semantics.apply(rec);
    }
    // Deletes must propagate even when the page was already absent.
    changed = changed || rec.op == web::WriteOp::kDelete;
    o.applied_clock.observe(rec.wid);
    if (rec.global_seq > o.applied_gseq &&
        (o.cfg.policy.model != ObjectModel::kSequential ||
         rec.global_seq == o.applied_gseq + 1)) {
      o.applied_gseq = rec.global_seq;
      GLOBE_CHECK_HOOK(on_gseq_apply(
          &o, config_.store_id, o.cfg.object,
          o.cfg.policy.model == ObjectModel::kSequential, o.applied_gseq));
    }
    if (rec.ordered) {
      GLOBE_CHECK_HOOK(on_writer_apply(&o, config_.store_id, o.cfg.object,
                                       rec.wid.client, rec.wid.seq));
    }
    o.lamport = std::max(o.lamport, rec.lamport);
    o.invalid_pages.erase(rec.page);

    // Causal records are logged and propagated even when LWW rejected
    // their content: other replicas need their WiDs for dependency
    // coverage. Eventual losers are dropped (the winner suffices).
    if (changed || !is_eventual) {
      o.log.append(rec);
      trace_write_span(obs::SpanKind::kApply, config_.store_id, o.cfg.object,
                       rec.wid, rec.global_seq);
      record_apply(o, rec, /*changed=*/true);
      ++o.writes_applied;
      if (metrics_ != nullptr) metrics_->record_shard_write(config_.shard);
      applied.push_back(std::move(rec));
    } else {
      // Last-writer-wins rejected the record: the state kept a newer
      // version. Ack the writer but record no application.
      record_apply(o, rec, /*changed=*/false);
    }
  }
  o.demand_retry_budget = 100;  // progress: re-arm the retry budget
  maybe_compact(o);
  note_gaps(o);
  unpark_ready(o);
  if (!applied.empty()) propagate(o, applied);
}

void StoreEngine::maybe_compact(ObjectState& o) {
  bool compacted = false;
  const std::size_t threshold = config_.log_compact_threshold;
  if (threshold != 0 && o.log.size() > threshold) {
    // Fold the oldest half into the base clock; requesters behind the
    // horizon fall back to a snapshot cutover (handle_fetch_request /
    // handle_anti_entropy check can_serve()).
    o.log.compact(threshold / 2);
    compacted = true;
  }
  const std::size_t budget = config_.log_compact_bytes;
  if (budget != 0 && o.log.retained_bytes() > budget) {
    // Byte-budget policy: bound the retained payload regardless of
    // record count (a handful of huge pages can dwarf thousands of
    // small ones). Compact down to half the budget to amortize.
    o.log.compact_to_bytes(budget / 2);
    compacted = true;
  }
  if (compacted && metrics_ != nullptr) metrics_->record_log_compaction();
}

void StoreEngine::note_gaps(ObjectState& o) {
  o.outdated = o.orderer->has_gaps() ||
               !o.applied_clock.dominates(o.known_clock) ||
               o.applied_gseq < o.known_gseq;
}

// ---------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------

bool StoreEngine::requirement_satisfied(const ObjectState& o,
                                        const ClientRequest& req) {
  return o.applied_clock.dominates(req.min_clock) &&
         o.applied_gseq >= req.min_global_seq;
}

bool StoreEngine::needs_page_fetch(const ObjectState& o,
                                   const ClientRequest& req) {
  if (req.inv.method != msg::Method::kGetPage) return false;
  util::Reader args{util::BytesView(req.inv.args)};
  const std::string page = args.str();
  return o.invalid_pages.count(page) > 0;
}

InvokeReply StoreEngine::make_read_reply(ObjectState& o,
                                         const ClientRequest& req) {
  core::InvokeResult res = o.semantics.execute_read(req.inv);
  InvokeReply rep;
  rep.ok = res.ok;
  rep.error = std::move(res.error);
  rep.value = std::move(res.value);
  if (o.cfg.policy.access_transfer == AccessTransfer::kFull &&
      req.inv.method == msg::Method::kGetPage) {
    // Access transfer type "full": the whole document travels with the
    // access (Table 1), regardless of how little the client asked for.
    rep.document = o.semantics.snapshot();
  }
  rep.global_seq = o.applied_gseq;
  rep.store_clock = o.applied_clock;
  rep.store = config_.store_id;
  ++o.reads_served;
  if (metrics_ != nullptr) {
    metrics_->record_shard_read(config_.shard);
    if (o.outdated) metrics_->record_stale_serve();
  }
  return rep;
}

void StoreEngine::serve_read(ObjectState& o, const Address& from,
                             std::uint64_t request_id,
                             const ClientRequest& req) {
  if (o.cfg.cache_mode == CacheMode::kCheckOnRead) {
    serve_read_check_on_read(o, from, request_id, req);
    return;
  }
  if (o.cfg.cache_mode == CacheMode::kTtl) {
    serve_read_ttl(o, from, request_id, req);
    return;
  }

  const bool satisfied = requirement_satisfied(o, req);
  const bool invalid = needs_page_fetch(o, req);
  if (satisfied && !invalid) {
    reply_invoke(o, from, request_id, make_read_reply(o, req));
    return;
  }

  // The store cannot serve this read coherently yet: apply the outdate
  // reaction (Section 3.3): wait for propagation, or demand an update.
  if (invalid ||
      o.cfg.policy.client_outdate_reaction == OutdateReaction::kDemand) {
    if (metrics_ != nullptr) metrics_->record_session_demand();
    std::vector<std::string> pages;
    if (invalid &&
        o.cfg.policy.access_transfer == AccessTransfer::kPartial) {
      util::Reader args{util::BytesView(req.inv.args)};
      pages.push_back(args.str());
    }
    park(o, from, request_id, req);
    demand_fetch(o, std::move(pages));
  } else {
    if (metrics_ != nullptr) metrics_->record_session_wait();
    park(o, from, request_id, req);
  }
}

void StoreEngine::park(ObjectState& o, const Address& from,
                       std::uint64_t request_id, ClientRequest req) {
  o.parked.push_back(Parked{from, request_id, std::move(req)});
}

void StoreEngine::unpark_ready(ObjectState& o) {
  if (o.parked.empty() || o.unparking) return;
  o.unparking = true;
  std::vector<Parked> waiting = std::move(o.parked);
  o.parked.clear();
  for (Parked& p : waiting) {
    if (!o.ready) {
      o.parked.push_back(std::move(p));
      continue;
    }
    if (p.request.inv.writes()) {
      handle_client_request(o, p.from, p.request_id, std::move(p.request));
      continue;
    }
    const bool satisfied = requirement_satisfied(o, p.request);
    const bool invalid = needs_page_fetch(o, p.request);
    if (satisfied && !invalid) {
      reply_invoke(o, p.from, p.request_id, make_read_reply(o, p.request));
    } else {
      o.parked.push_back(std::move(p));
    }
  }
  o.unparking = false;
  // Unsatisfied demand-mode reads must eventually retry: their update may
  // not have reached our upstream when we last fetched. The budget bounds
  // the loop when the awaited write never arrives.
  if (!o.parked.empty() && !o.fetch_in_flight &&
      o.cfg.policy.client_outdate_reaction == OutdateReaction::kDemand &&
      !o.cfg.is_primary && o.demand_retry_budget > 0) {
    --o.demand_retry_budget;
    sim_.schedule_after(sim::SimDuration::millis(25), [this, &o] {
      if (!o.parked.empty()) demand_fetch(o);
    });
  }
}

// ---------------------------------------------------------------------
// Baseline Web cache protocols (Section 1)
// ---------------------------------------------------------------------

void StoreEngine::serve_read_check_on_read(ObjectState& o, const Address& from,
                                           std::uint64_t request_id,
                                           ClientRequest req) {
  if (req.inv.method != msg::Method::kGetPage) {
    reply_invoke(o, from, request_id, make_read_reply(o, req));
    return;
  }
  util::Reader args{util::BytesView(req.inv.args)};
  const std::string page = args.str();
  const auto current = o.semantics.document().get(page);

  FetchRequest fetch;
  fetch.validate_only = true;
  fetch.pages.push_back(page);
  fetch.have_lamport = current ? current->lamport : 0;
  comm_.request_with(
      o.cfg.upstream, msg::MsgType::kFetchRequest, o.cfg.object,
      [&](util::Writer& w) { fetch.encode(w); },
      [this, &o, from, request_id, req = std::move(req)](
          bool ok, const Address&, const msg::EnvelopeView& env) mutable {
        if (ok) {
          FetchReply::View rep = FetchReply::decode_view(env.body);
          if (!rep.not_modified) {
            for (auto& rec : rep.records) {
              o.semantics.apply(rec);
              o.applied_clock.observe(rec.wid);
              // Same contiguity guard as apply_ready: a sequential-model
              // store must never advertise a gseq floor with holes
              // behind it (WriteLog::can_serve trusts that floor).
              if (rec.global_seq > o.applied_gseq &&
                  (o.cfg.policy.model != ObjectModel::kSequential ||
                   rec.global_seq == o.applied_gseq + 1)) {
                o.applied_gseq = rec.global_seq;
                GLOBE_CHECK_HOOK(on_gseq_apply(
                    &o, config_.store_id, o.cfg.object,
                    o.cfg.policy.model == ObjectModel::kSequential,
                    o.applied_gseq));
              }
              o.fetched_at[rec.page] = sim_.now();
            }
          }
        }
        reply_invoke(o, from, request_id, make_read_reply(o, req));
      });
}

void StoreEngine::serve_read_ttl(ObjectState& o, const Address& from,
                                 std::uint64_t request_id, ClientRequest req) {
  if (req.inv.method != msg::Method::kGetPage) {
    reply_invoke(o, from, request_id, make_read_reply(o, req));
    return;
  }
  util::Reader args{util::BytesView(req.inv.args)};
  const std::string page = args.str();
  const auto it = o.fetched_at.find(page);
  const bool fresh = o.semantics.document().has(page) &&
                     it != o.fetched_at.end() &&
                     sim_.now() - it->second < o.cfg.ttl;
  if (fresh) {
    reply_invoke(o, from, request_id, make_read_reply(o, req));
    return;
  }
  FetchRequest fetch;
  fetch.validate_only = true;  // "give me the latest copy of this page"
  fetch.pages.push_back(page);
  fetch.have_lamport = 0;
  comm_.request_with(
      o.cfg.upstream, msg::MsgType::kFetchRequest, o.cfg.object,
      [&](util::Writer& w) { fetch.encode(w); },
      [this, &o, from, request_id, page,
       req = std::move(req)](bool ok, const Address&,
                             const msg::EnvelopeView& env) mutable {
        if (ok) {
          FetchReply::View rep = FetchReply::decode_view(env.body);
          for (auto& rec : rep.records) {
            o.semantics.apply(rec);
            o.applied_clock.observe(rec.wid);
            if (rec.global_seq > o.applied_gseq &&
                (o.cfg.policy.model != ObjectModel::kSequential ||
                 rec.global_seq == o.applied_gseq + 1)) {
              o.applied_gseq = rec.global_seq;
              GLOBE_CHECK_HOOK(on_gseq_apply(
                  &o, config_.store_id, o.cfg.object,
                  o.cfg.policy.model == ObjectModel::kSequential,
                  o.applied_gseq));
            }
          }
          o.fetched_at[page] = sim_.now();
        }
        reply_invoke(o, from, request_id, make_read_reply(o, req));
      });
}

// ---------------------------------------------------------------------
// Propagation
// ---------------------------------------------------------------------

void StoreEngine::propagate(ObjectState& o,
                            const std::vector<web::WriteRecord>& recs) {
  if (o.cfg.policy.initiative == TransferInitiative::kPull) {
    return;  // downstream stores poll; nothing is pushed
  }
  service_flow_events();
  std::vector<Address> targets;
  for (const Subscriber& s : o.subscribers) targets.push_back(s.address);
  if (multi_master(o) && !o.cfg.is_primary && o.cfg.upstream.valid()) {
    targets.push_back(o.cfg.upstream);
  }
  if (targets.empty()) return;

  // Per-record exclusion: never reflect a record straight back to the
  // neighbour it arrived from (it may still need to travel to every
  // other neighbour, e.g. a buffered client write draining after an
  // upstream update must still flow upstream). Batches are consecutive
  // same-origin runs so dropping one preserves the apply order of the
  // remaining records.
  // Only materialize what this store's propagation mode consumes:
  // partial updates splice the encoded bytes, invalidations read the
  // page list, notification/full transfers use the batch as a marker.
  const web::BatchNeeds needs{
      .wire = o.cfg.policy.propagation == Propagation::kUpdate &&
              o.cfg.policy.coherence_transfer == CoherenceTransfer::kPartial,
      .pages = o.cfg.policy.propagation == Propagation::kInvalidate};
  std::vector<web::RecordBatchPtr> batches;
  if (config_.shared_fanout) {
    for (std::size_t i = 0; i < recs.size();) {
      std::size_t j = i + 1;
      while (j < recs.size() &&
             recs[j].transient_origin == recs[i].transient_origin) {
        ++j;
      }
      batches.push_back(std::make_shared<const web::RecordBatch>(
          std::span(recs).subspan(i, j - i), recs[i].transient_origin,
          needs));
      i = j;
    }
  }
  // Immediate pushes group destinations whose batch set is identical
  // (the common case: everyone but the record's origin receives
  // everything) so each group can travel as ONE shared wire datagram.
  const bool lazy = o.cfg.policy.instant == TransferInstant::kLazy;
  std::vector<std::pair<std::vector<web::RecordBatchPtr>, std::vector<Address>>>
      groups;
  for (const Address& t : targets) {
    const std::uint64_t tkey = addr_key(t);
    std::vector<web::RecordBatchPtr> out;
    if (config_.shared_fanout) {
      out.reserve(batches.size());
      for (const web::RecordBatchPtr& b : batches) {
        if (b->origin() != tkey) out.push_back(b);
      }
    } else {
      // Benchmark baseline (the seed behaviour): every target gets its
      // own record copy and its own encode.
      std::vector<web::WriteRecord> copy;
      copy.reserve(recs.size());
      for (const auto& rec : recs) {
        if (rec.transient_origin != tkey) copy.push_back(rec);
      }
      if (!copy.empty()) {
        out.push_back(std::make_shared<const web::RecordBatch>(
            std::span<const web::WriteRecord>(copy), 0, needs));
      }
    }
    if (out.empty()) continue;
    const FlowDisposition fd =
        lazy ? FlowDisposition::kPark : flow_disposition(o, tkey);
    if (fd == FlowDisposition::kSkip) continue;  // dropped under deadline
    if (fd == FlowDisposition::kPark) {
      // Lazy mode, or a windowed channel under backpressure: park the
      // shared batches; resume (or the lazy timer) flushes them in order.
      auto& queue = o.lazy_queues[tkey];
      queue.insert(queue.end(), std::make_move_iterator(out.begin()),
                   std::make_move_iterator(out.end()));
      o.lazy_dirty = true;
    } else {
      bool grouped = false;
      for (auto& g : groups) {
        if (g.first == out) {
          g.second.push_back(t);
          grouped = true;
          break;
        }
      }
      if (!grouped) groups.emplace_back(std::move(out), std::vector{t});
    }
  }
  for (auto& g : groups) send_coherence_multi(o, g.second, g.first);
}

void StoreEngine::send_coherence_multi(
    ObjectState& o, const std::vector<Address>& to,
    std::span<const web::RecordBatchPtr> batches) {
  if (to.empty()) return;
  if (!config_.shared_wire || to.size() == 1) {
    // Baseline (and trivial) path: one header+body encode per target.
    for (const Address& t : to) send_coherence(o, t, batches);
    return;
  }
  const auto& p = o.cfg.policy;
  if (p.propagation == Propagation::kInvalidate) {
    InvalidateMsg m;
    std::set<std::string> pages;
    for (const web::RecordBatchPtr& b : batches) {
      pages.insert(b->pages().begin(), b->pages().end());
    }
    m.pages.assign(pages.begin(), pages.end());
    m.known_clock = o.applied_clock;
    m.known_gseq = o.applied_gseq;
    comm_.multicast_with(to, msg::MsgType::kInvalidate, o.cfg.object,
                         [&](util::Writer& w) { m.encode(w); });
    return;
  }
  switch (p.coherence_transfer) {
    case CoherenceTransfer::kNotification: {
      NotifyMsg m;
      m.known_clock = o.applied_clock;
      m.known_gseq = o.applied_gseq;
      comm_.multicast_with(to, msg::MsgType::kNotify, o.cfg.object,
                           [&](util::Writer& w) { m.encode(w); });
      return;
    }
    case CoherenceTransfer::kPartial: {
      comm_.multicast_with(to, msg::MsgType::kUpdate, o.cfg.object,
                           [&](util::Writer& w) {
                             UpdateMsg::encode_batches(w, batches,
                                                       o.applied_clock,
                                                       o.applied_gseq);
                           });
      return;
    }
    case CoherenceTransfer::kFull: {
      SnapshotMsg m;
      m.document = o.semantics.snapshot();
      m.clock = o.applied_clock;
      m.gseq = o.applied_gseq;
      comm_.multicast_with(to, msg::MsgType::kSnapshot, o.cfg.object,
                           [&](util::Writer& w) { m.encode(w); });
      return;
    }
  }
}

void StoreEngine::send_coherence(
    ObjectState& o, const Address& to,
    std::span<const web::RecordBatchPtr> batches) {
  const auto& p = o.cfg.policy;
  if (p.propagation == Propagation::kInvalidate) {
    InvalidateMsg m;
    std::set<std::string> pages;
    for (const web::RecordBatchPtr& b : batches) {
      pages.insert(b->pages().begin(), b->pages().end());
    }
    m.pages.assign(pages.begin(), pages.end());
    m.known_clock = o.applied_clock;
    m.known_gseq = o.applied_gseq;
    comm_.send_with(to, msg::MsgType::kInvalidate, o.cfg.object,
                    [&](util::Writer& w) { m.encode(w); });
    return;
  }
  switch (p.coherence_transfer) {
    case CoherenceTransfer::kNotification: {
      NotifyMsg m;
      m.known_clock = o.applied_clock;
      m.known_gseq = o.applied_gseq;
      comm_.send_with(to, msg::MsgType::kNotify, o.cfg.object,
                      [&](util::Writer& w) { m.encode(w); });
      return;
    }
    case CoherenceTransfer::kPartial: {
      // Splice the pre-encoded shared batches straight into the wire
      // buffer: the record payloads were serialized once, no matter how
      // many subscribers this update reaches.
      comm_.send_with(to, msg::MsgType::kUpdate, o.cfg.object,
                      [&](util::Writer& w) {
                        UpdateMsg::encode_batches(w, batches, o.applied_clock,
                                                  o.applied_gseq);
                      });
      return;
    }
    case CoherenceTransfer::kFull: {
      SnapshotMsg m;
      m.document = o.semantics.snapshot();
      m.clock = o.applied_clock;
      m.gseq = o.applied_gseq;
      comm_.send_with(to, msg::MsgType::kSnapshot, o.cfg.object,
                      [&](util::Writer& w) { m.encode(w); });
      return;
    }
  }
}

void StoreEngine::flush_lazy_all() {
  for (auto& [id, op] : objects_) flush_lazy(*op);
}

void StoreEngine::flush_lazy(ObjectState& o) {
  service_flow_events();
  if (!o.lazy_dirty) return;
  o.lazy_dirty = false;
  auto queues = std::move(o.lazy_queues);
  o.lazy_queues.clear();
  // Notification and full transfers carry no per-record data: a queued
  // target with an empty batch list still gets its (aggregated) message.
  const bool data_free =
      o.cfg.policy.propagation == Propagation::kUpdate &&
      o.cfg.policy.coherence_transfer != CoherenceTransfer::kPartial;
  for (auto& [key, batches] : queues) {
    if (paused_peers_.count(key) != 0) {
      // Still under transport backpressure: keep the segment parked
      // (resume or the deadline in flow_disposition settles it later).
      auto& back = o.lazy_queues[key];
      back.insert(back.end(), std::make_move_iterator(batches.begin()),
                  std::make_move_iterator(batches.end()));
      o.lazy_dirty = true;
      continue;
    }
    if (batches.empty() && !data_free) continue;
    send_coherence(o, key_addr(key), batches);
  }
}

bool StoreEngine::service_flow_events() {
  if (config_.flow == nullptr) return false;
  bool dropped = false;
  for (const net::FlowControl::Event& ev :
       config_.flow->poll_events(address())) {
    const std::uint64_t key = addr_key(ev.peer);
    switch (ev.what) {
      case net::FlowControl::PeerEvent::kPaused:
        paused_peers_.insert(key);
        if (metrics_ != nullptr) metrics_->record_flow_pause();
        break;
      case net::FlowControl::PeerEvent::kResumed: {
        paused_peers_.erase(key);
        paused_rounds_.erase(key);
        if (metrics_ != nullptr) metrics_->record_flow_resume();
        // The channel drained below its low watermark: everything parked
        // for this peer can go out now, in its original order. The
        // channel is per endpoint pair, so every hosted object's queue
        // for it drains.
        for (auto& [id, op] : objects_) {
          ObjectState& o = *op;
          auto it = o.lazy_queues.find(key);
          if (it != o.lazy_queues.end() && !it->second.empty()) {
            auto batches = std::move(it->second);
            o.lazy_queues.erase(it);
            send_coherence(o, ev.peer, batches);
          }
        }
        break;
      }
      case net::FlowControl::PeerEvent::kEvicted:
        drop_flow_peer(key);
        if (metrics_ != nullptr) metrics_->record_flow_eviction();
        dropped = true;
        break;
    }
  }
  return dropped;
}

StoreEngine::FlowDisposition StoreEngine::flow_disposition(
    ObjectState& o, std::uint64_t key) {
  if (paused_peers_.count(key) == 0) return FlowDisposition::kSend;
  const std::size_t rounds = ++paused_rounds_[key];
  const auto queued = o.lazy_queues.find(key);
  const std::size_t depth =
      queued == o.lazy_queues.end() ? 0 : queued->second.size();
  GLOBE_CHECK_HOOK(on_parked_batches(&o, config_.store_id, key, depth,
                                     config_.flow_paused_batches_limit));
  const bool hopeless =
      (config_.flow_paused_rounds_limit != 0 &&
       rounds > config_.flow_paused_rounds_limit) ||
      (config_.flow_paused_batches_limit != 0 &&
       depth >= config_.flow_paused_batches_limit);
  if (hopeless) {
    drop_flow_peer(key);
    if (metrics_ != nullptr) metrics_->record_flow_eviction();
    return FlowDisposition::kSkip;
  }
  return FlowDisposition::kPark;
}

void StoreEngine::drop_flow_peer(std::uint64_t key) {
  const Address peer = key_addr(key);
  for (auto& [id, op] : objects_) {
    std::erase_if(op->subscribers,
                  [&](const Subscriber& s) { return s.address == peer; });
    op->lazy_queues.erase(key);
  }
  paused_peers_.erase(key);
  paused_rounds_.erase(key);
  if (config_.flow != nullptr) config_.flow->reset_peer(address(), peer);
}

void StoreEngine::pull_from_upstream(ObjectState& o) {
  if (multi_master(o)) {
    // Anti-entropy exchange: offer my clock; receive missing records and
    // learn what the upstream is missing so I can push it back.
    AntiEntropyRequest reqmsg;
    reqmsg.have_clock = o.applied_clock;
    reqmsg.have_gseq = o.applied_gseq;
    comm_.request_with(
        o.cfg.upstream, msg::MsgType::kAntiEntropyRequest, o.cfg.object,
        [&](util::Writer& w) { reqmsg.encode(w); },
        [this, &o](bool ok, const Address& from,
                   const msg::EnvelopeView& env) {
          if (!ok) return;
          AntiEntropyReply rep = AntiEntropyReply::decode(env.body);
          // Push back records the responder is missing — an indexed
          // delta, not a log scan. If the responder is behind *our*
          // compaction horizon, a delta can no longer reach it (and it
          // may never request from us): push the current state as
          // records instead. State-records LWW-merge commutatively at
          // the peer, which converges even when both sides compacted
          // past each other (a restore-snapshot would apply in neither
          // direction there).
          std::vector<web::WriteRecord> for_peer =
              o.log.can_serve(rep.responder_clock, rep.responder_gseq)
                  ? records_since(o, rep.responder_clock, rep.responder_gseq,
                                  {})
                  : state_as_records(o);
          if (!for_peer.empty()) {
            comm_.send_with(from, msg::MsgType::kUpdate, o.cfg.object,
                            [&](util::Writer& w) {
                              UpdateMsg::encode_fields(w, for_peer,
                                                       o.applied_clock,
                                                       o.applied_gseq);
                            });
          }
          std::vector<web::WriteRecord> ready;
          admit_remote(o, std::move(rep.records), addr_key(from), ready);
          apply_ready(o, std::move(ready));
        });
    return;
  }
  FetchRequest fetch;
  fetch.have_clock = o.applied_clock;
  fetch.have_gseq = fetch_gseq_floor(o);
  GLOBE_CHECK_HOOK(on_fetch_floor(
      &o, config_.store_id, o.cfg.object,
      o.cfg.policy.model == ObjectModel::kSequential, fetch.have_gseq));
  fetch.want_full =
      o.cfg.policy.coherence_transfer == CoherenceTransfer::kFull;
  fetch.accepts_delta = config_.delta_snapshots;
  comm_.request_with(o.cfg.upstream, msg::MsgType::kFetchRequest,
                     o.cfg.object,
                     [&](util::Writer& w) { fetch.encode(w); },
                     [this, &o](bool ok, const Address&,
                                const msg::EnvelopeView& env) {
                       if (!ok) return;
                       apply_fetch_reply(o, FetchReply::decode_view(env.body));
                     });
}

void StoreEngine::demand_fetch(ObjectState& o,
                               std::vector<std::string> pages) {
  if (o.fetch_in_flight || o.cfg.is_primary) return;
  o.fetch_in_flight = true;
  FetchRequest fetch;
  fetch.have_clock = o.applied_clock;
  fetch.have_gseq = fetch_gseq_floor(o);
  GLOBE_CHECK_HOOK(on_fetch_floor(
      &o, config_.store_id, o.cfg.object,
      o.cfg.policy.model == ObjectModel::kSequential, fetch.have_gseq));
  fetch.pages = std::move(pages);
  fetch.want_full =
      o.cfg.policy.coherence_transfer == CoherenceTransfer::kFull ||
      (fetch.pages.empty() &&
       o.cfg.policy.access_transfer == AccessTransfer::kFull &&
       o.cfg.policy.propagation == Propagation::kInvalidate);
  fetch.accepts_delta = config_.delta_snapshots;
  // Demand-updates must survive lossy links (Section 4.2: they are the
  // retransmission mechanism), so the request itself carries a timeout
  // and retries.
  comm_.request_with(o.cfg.upstream, msg::MsgType::kFetchRequest,
                     o.cfg.object,
                     [&](util::Writer& w) { fetch.encode(w); },
                     [this, &o](bool ok, const Address&,
                                const msg::EnvelopeView& env) {
                       o.fetch_in_flight = false;
                       if (!ok) {
                         if (o.demand_retry_budget > 0 &&
                             (o.outdated || !o.parked.empty())) {
                           --o.demand_retry_budget;
                           sim_.schedule_after(sim::SimDuration::millis(50),
                                               [this, &o] { demand_fetch(o); });
                         }
                         return;
                       }
                       apply_fetch_reply(o, FetchReply::decode_view(env.body));
                     },
                     sim::SimDuration::millis(250), /*retries=*/4);
}

void StoreEngine::apply_fetch_reply(ObjectState& o, FetchReply::View reply) {
  if (reply.not_modified) return;
  if (reply.need_snapshot) {
    // Cutover deferred for a delta-snapshot requester: ship our page
    // summary (or floor) and receive only what we are missing.
    request_snapshot_delta(o);
    return;
  }
  if (reply.full) {
    // Snapshot cutover: restore straight from the borrowed view — the
    // document bytes are never copied into an intermediate message.
    apply_snapshot(o, reply.snapshot, reply.clock, reply.gseq);
    return;
  }
  std::vector<web::WriteRecord> ready;
  admit_remote(o, std::move(reply.records), addr_key(o.cfg.upstream), ready);
  o.known_clock.merge(reply.clock);
  o.known_gseq = std::max(o.known_gseq, reply.gseq);
  apply_ready(o, std::move(ready));
  note_gaps(o);
  if (o.outdated &&
      o.cfg.policy.object_outdate_reaction == OutdateReaction::kDemand &&
      o.demand_retry_budget > 0) {
    // Our fetch did not close every gap (e.g. the missing record had not
    // yet reached our upstream either): retry shortly.
    --o.demand_retry_budget;
    sim_.schedule_after(sim::SimDuration::millis(25), [this, &o] {
      if (o.outdated) demand_fetch(o);
    });
  }
}

void StoreEngine::subscribe_to_upstream(ObjectState& o) {
  if (!o.cfg.upstream.valid()) return;
  SubscribeMsg sub;
  sub.subscriber = comm_.local_address();
  sub.store_id = config_.store_id;
  sub.store_class = static_cast<std::uint8_t>(config_.store_class);
  // Under dynamic membership the upstream may be crashed or partitioned
  // away; the request then times out and is re-attempted (bounded), so a
  // joining or recovering store eventually bootstraps once the network
  // allows. Without membership the static topology is assumed healthy
  // and the request is untimed (the seed behaviour).
  const bool timed = config_.membership.valid();
  const bool resubscribe = o.ready;
  if (resubscribe) ++resubscribes_;
  // A re-subscriber already holds state (view re-parenting, rejoin after
  // eviction, crash recovery): with delta snapshots it ships what it has
  // and receives only the difference, instead of the whole document.
  if (resubscribe && config_.delta_snapshots) {
    sub.want_delta = true;
    sub.delta_req = make_delta_request(o, o.cfg.upstream);
  }
  comm_.request_with(
      o.cfg.upstream, msg::MsgType::kSubscribe, o.cfg.object,
      [&](util::Writer& w) { sub.encode(w); },
      [this, &o, resubscribe](bool ok, const Address&,
                              const msg::EnvelopeView& env) {
        if (!ok) {
          if (o.subscribe_retry_budget > 0 && alive_ && !departed_) {
            --o.subscribe_retry_budget;
            sim_.schedule_after(sim::SimDuration::millis(500), [this, &o] {
              if (alive_ && !departed_) subscribe_to_upstream(o);
            });
          }
          return;
        }
        o.subscribe_retry_budget = 50;
        StateTransfer::View snap = StateTransfer::decode_view(env.body);
        if (resubscribe) {
          // Re-subscription of a store that already holds state: the
          // transfer (full or page-granular) merges forward-only, and a
          // resync round closes whatever it could not prove (e.g.
          // multi-master divergence where neither clock dominates).
          apply_state_transfer(o, snap);
          resync(o);
          return;
        }
        o.semantics.restore(snap.snapshot);
        o.applied_clock.merge(snap.clock);
        o.applied_gseq = std::max(o.applied_gseq, snap.gseq);
        GLOBE_CHECK_HOOK(on_state_adoption(&o, config_.store_id, o.cfg.object,
                                           o.applied_gseq));
        o.log.note_snapshot(snap.clock, snap.gseq,
                            o.cfg.policy.model == ObjectModel::kSequential);
        note_transfer_lineage(o, snap.source, snap.version);
        record_snapshot_event(o);
        std::vector<web::WriteRecord> ready;
        o.orderer->reset_to(o.applied_clock, o.applied_gseq, ready);
        if (o.mw_filter != nullptr) {
          std::vector<web::WriteRecord> gated;
          o.mw_filter->reset_to(o.applied_clock, o.applied_gseq, gated);
          for (auto& g : gated) o.orderer->admit(std::move(g), ready);
        }
        for (auto& rec : ready) {
          rec.transient_origin = addr_key(o.cfg.upstream);
        }
        o.ready = true;
        apply_ready(o, std::move(ready));
        note_gaps(o);
        unpark_ready(o);
      },
      timed ? sim::SimDuration::millis(250) : sim::SimDuration(0),
      timed ? 4 : 0);
}

// ---------------------------------------------------------------------
// Membership & lifecycle
// ---------------------------------------------------------------------

void StoreEngine::start_membership() {
  if (!config_.membership.valid() || departed_) return;
  join_membership();
  membership_timer_.emplace(sim_, config_.membership_heartbeat,
                            [this] { send_membership_heartbeat(); });
  membership_timer_->start();
}

void StoreEngine::fill_applied(membership::MemberAnnounce& ann) const {
  bool first = true;
  for (const auto& [id, op] : objects_) {
    if (first) {
      ann.applied = op->applied_clock;
      ann.applied_gseq = op->applied_gseq;
      first = false;
    } else {
      ann.applied.floor_with(op->applied_clock);
      ann.applied_gseq = std::min(ann.applied_gseq, op->applied_gseq);
    }
  }
  ann.has_applied = !first;
}

void StoreEngine::handle_stability_horizon(const msg::EnvelopeView& env) {
  const membership::HorizonMsg h = membership::HorizonMsg::decode(env.body);
  // The floor only advances. A stale or reordered broadcast is a no-op,
  // so the collectors below run once per actual advance.
  coherence::VectorClock merged = horizon_clock_;
  merged.merge(h.clock);
  bool advanced = false;
  if (!(merged == horizon_clock_)) {
    horizon_clock_ = std::move(merged);
    advanced = true;
  }
  if (h.gseq > horizon_gseq_) {
    horizon_gseq_ = h.gseq;
    advanced = true;
  }
  if (!advanced) return;

  std::uint64_t tombstones = 0;
  for (auto& [id, op] : objects_) {
    ObjectState& o = *op;
    if (o.log.compact_below(horizon_clock_, horizon_gseq_) > 0 &&
        metrics_ != nullptr) {
      metrics_->record_log_compaction();
    }
    tombstones +=
        o.semantics.document().collect_tombstones(horizon_clock_);
  }
  if (metrics_ != nullptr && tombstones > 0) {
    metrics_->record_tombstones_collected(tombstones);
  }
  if (history_ != nullptr) {
    const std::size_t retired =
        history_->note_horizon(horizon_clock_, horizon_gseq_);
    if (metrics_ != nullptr && retired > 0) {
      metrics_->record_events_retired(retired);
    }
  }
}

void StoreEngine::join_membership() {
  membership::MemberAnnounce ann;
  ann.contact = contact();
  ann.shard = config_.shard;
  fill_applied(ann);
  comm_.request_with(
      config_.membership, msg::MsgType::kMembershipJoin, membership_scope(),
      [&](util::Writer& w) { ann.encode(w); },
      [this](bool ok, const Address&, const msg::EnvelopeView& env) {
        if (!ok) return;  // heartbeats re-admit us once reachable
        apply_view(membership::ViewMsg::decode(env.body).view);
      },
      sim::SimDuration::millis(250), /*retries=*/3);
}

void StoreEngine::send_membership_heartbeat() {
  membership::MemberAnnounce ann;
  ann.contact = contact();
  ann.shard = config_.shard;
  fill_applied(ann);
  comm_.send_with_background(config_.membership,
                             msg::MsgType::kMembershipHeartbeat,
                             membership_scope(),
                             [&](util::Writer& w) { ann.encode(w); });
}

void StoreEngine::apply_view(const membership::View& view) {
  if (view.object != membership_scope() || view.shard != config_.shard ||
      view.epoch <= view_epoch_) {
    return;
  }
  // A member that stayed in the view sees every epoch in sequence
  // (reliable FIFO delivery); a jump means WE missed view changes —
  // evicted during a partition and just re-admitted, most likely — so
  // our upstream may have dropped us as a subscriber.
  const bool jumped = view_epoch_ != 0 && view.epoch > view_epoch_ + 1;
  view_epoch_ = view.epoch;
  GLOBE_CHECK_HOOK(on_view_adopt(this, "store", config_.store_id, view.epoch));
  GLOBE_CHECK_HOOK(note_owner_context(this, config_.store_id, view.epoch));
  for (auto& [id, op] : objects_) {
    GLOBE_CHECK_HOOK(note_owner_context(op.get(), config_.store_id,
                                        view.epoch));
  }
  view_ = view;  // the base the next ViewDelta diff applies onto

  // Members of the PREVIOUS view that the new view lacks have left the
  // replica set (eviction, crash, graceful leave): they stop receiving
  // fan-out immediately — for every object this store hosts, since the
  // view covers the whole shard endpoint, not one object. Subscribers
  // absent from both views are kept — a just-joined store can subscribe
  // before the view catches up, and stores running without membership
  // still subscribe the static way.
  const auto left = [&](const Address& a) {
    if (view.contains(a)) return false;
    for (const Address& m : last_view_members_) {
      if (m == a) return true;
    }
    return false;
  };
  for (auto& [id, op] : objects_) {
    ObjectState& o = *op;
    std::erase_if(o.subscribers,
                  [&](const Subscriber& s) { return left(s.address); });
    for (auto it = o.lazy_queues.begin(); it != o.lazy_queues.end();) {
      it = left(key_addr(it->first)) ? o.lazy_queues.erase(it)
                                     : std::next(it);
    }
  }
  for (auto it = paused_peers_.begin(); it != paused_peers_.end();) {
    it = left(key_addr(*it)) ? paused_peers_.erase(it) : std::next(it);
  }
  for (auto it = paused_rounds_.begin(); it != paused_rounds_.end();) {
    it = left(key_addr(it->first)) ? paused_rounds_.erase(it) : std::next(it);
  }
  last_view_members_.clear();
  for (const auto& m : view.members) last_view_members_.push_back(m.address);

  for (auto& [id, op] : objects_) {
    ObjectState& o = *op;
    if (o.cfg.is_primary || o.cfg.cache_mode != CacheMode::kGlobe ||
        !o.cfg.auto_subscribe) {
      continue;
    }
    bool need_resubscribe = jumped;
    if (!view.contains(o.cfg.upstream)) {
      // Our propagation parent left the view (crash, leave, eviction):
      // re-parent onto the best surviving member.
      const naming::ContactPoint* next =
          membership::choose_upstream(view, address());
      if (next != nullptr) {
        o.cfg.upstream = next->address;
        if (&o == def_) config_.upstream = next->address;
        need_resubscribe = true;
      }
    }
    if (need_resubscribe && o.ready) {
      subscribe_to_upstream(o);
    } else if (jumped) {
      resync(o);
    }
  }
}

void StoreEngine::handle_view_delta(const msg::EnvelopeView& env) {
  const membership::ViewDelta d = membership::ViewDelta::decode(env.body);
  if (d.object != membership_scope() || d.shard != config_.shard ||
      d.epoch <= view_epoch_) {
    return;
  }
  membership::View next;
  if (d.try_apply(view_, view_epoch_, &next)) {
    apply_view(next);
    return;
  }
  // Epoch gap (we missed deltas — evicted during a partition, or the
  // datagram was lost) or no base yet: re-anchor on the full view.
  // apply_view then sees the jump and resyncs as before.
  fetch_full_view();
}

void StoreEngine::fetch_full_view() {
  if (!config_.membership.valid() || view_fetch_in_flight_) return;
  // One fetch at a time: a churn burst delivers several gapped deltas
  // inside one round trip, and each would otherwise trigger its own
  // full-view request — the amplification deltas exist to avoid.
  view_fetch_in_flight_ = true;
  membership::ViewFetchMsg req;
  req.shard = config_.shard;
  comm_.request_with(
      config_.membership, msg::MsgType::kViewFetchRequest, membership_scope(),
      [&](util::Writer& w) { req.encode(w); },
      [this](bool ok, const Address&, const msg::EnvelopeView& env) {
        view_fetch_in_flight_ = false;
        if (!ok) return;  // the next broadcast (or heartbeat) retries
        apply_view(membership::ViewMsg::decode(env.body).view);
      },
      sim::SimDuration::millis(250), /*retries=*/2);
}

void StoreEngine::resync(ObjectState& o) {
  if (o.cfg.is_primary || !o.ready || !alive_ || departed_) return;
  o.demand_retry_budget = 100;  // re-arm: a view event is fresh progress
  if (multi_master(o)) {
    // One anti-entropy exchange heals both directions with the upstream;
    // records received re-propagate to our own subscribers as usual.
    pull_from_upstream(o);
  } else {
    demand_fetch(o);
  }
}

void StoreEngine::crash() {
  if (!alive_) return;
  alive_ = false;
  // Timers and volatile protocol state die with the process; document,
  // write log, clocks survive (a warm disk).
  lazy_timer_.reset();
  pull_timer_.reset();
  heartbeat_timer_.reset();
  membership_timer_.reset();
  for (auto& [id, op] : objects_) {
    ObjectState& o = *op;
    o.parked.clear();
    o.pending_write_acks.clear();
    o.lazy_queues.clear();
    o.lazy_dirty = false;
    o.fetch_in_flight = false;
    o.unparking = false;
  }
  view_fetch_in_flight_ = false;
}

void StoreEngine::recover() {
  if (alive_ || departed_) return;
  alive_ = true;
  for (auto& [id, op] : objects_) {
    op->subscribe_retry_budget = 50;
    op->demand_retry_budget = 100;
  }
  configure_timers();
  start_membership();
  for (auto& [id, op] : objects_) {
    ObjectState& o = *op;
    if (!o.cfg.is_primary && o.cfg.cache_mode == CacheMode::kGlobe &&
        o.cfg.auto_subscribe) {
      // Bootstrap through the cached-snapshot path; the ready flag is
      // still set from before the crash, so this runs as a re-subscribe
      // (forward-only snapshot merge + resync round).
      subscribe_to_upstream(o);
    }
  }
}

void StoreEngine::leave() {
  if (departed_ || !alive_) return;
  flush_lazy_all();  // drain what we still owe downstream
  if (config_.membership.valid()) {
    membership::LeaveMsg m;
    m.address = address();
    comm_.send_with(config_.membership, msg::MsgType::kMembershipLeave,
                    membership_scope(),
                    [&](util::Writer& w) { m.encode(w); });
  }
  departed_ = true;
  lazy_timer_.reset();
  pull_timer_.reset();
  heartbeat_timer_.reset();
  membership_timer_.reset();
  for (auto& [id, op] : objects_) {
    op->parked.clear();
    op->pending_write_acks.clear();
  }
}

// ---------------------------------------------------------------------
// Inter-store message handlers
// ---------------------------------------------------------------------

Orderer& StoreEngine::mw_gate(ObjectState& o,
                              std::vector<web::WriteRecord>& unwedged) {
  if (o.mw_filter == nullptr) {
    o.mw_filter = std::make_unique<PramOrderer>();
    // Seed the per-writer cursors with what this store already carries
    // (bootstrap snapshots included): a fresh filter starting at zero
    // would buffer the first ordered record forever, waiting for
    // predecessors a snapshot covered and nobody will resend.
    std::vector<web::WriteRecord> none;
    o.mw_filter->reset_to(o.applied_clock, o.applied_gseq, none);
  }
  // The cursors must never trail the applied clock afterwards either:
  // an ordered writer's record can reach the document AROUND the gate —
  // a snapshot-cutover state record carries no `ordered` bit, so it is
  // admitted ungated — and peers never resend writes our clock already
  // covers. A cursor stuck behind the clock would then buffer every
  // later record of that writer forever (a permanent post-partition
  // wedge: the gap it waits on is already applied). Records the sync
  // unwedges surface through `unwedged` and must be admitted onward.
  o.mw_filter->reset_to(o.applied_clock, o.applied_gseq, unwedged);
  return *o.mw_filter;
}

void StoreEngine::admit_remote(ObjectState& o,
                               std::vector<web::WriteRecord> recs,
                               std::uint64_t origin_key,
                               std::vector<web::WriteRecord>& ready) {
  for (auto& rec : recs) {
    rec.transient_origin = origin_key;
    if (rec.ordered && o.cfg.policy.model == ObjectModel::kEventual) {
      // Monotonic-writes clients need per-writer order even under
      // eventual coherence; gate through a PRAM filter first. EVERY
      // remote ingestion path (push update, anti-entropy reply, fetch
      // reply) must share this gate: if one path bypassed it, the
      // filter's per-writer cursor would never advance for records that
      // arrived the other way, and later ordered records would buffer
      // forever (a permanent post-partition wedge).
      std::vector<web::WriteRecord> gated;
      mw_gate(o, gated).admit(std::move(rec), gated);
      for (auto& g : gated) o.orderer->admit(std::move(g), ready);
    } else {
      o.orderer->admit(std::move(rec), ready);
    }
  }
}

void StoreEngine::handle_update(ObjectState& o, const Address& from,
                                const msg::EnvelopeView& env) {
  UpdateMsg m = UpdateMsg::decode(env.body);
  o.known_clock.merge(m.sender_clock);
  o.known_gseq = std::max(o.known_gseq, m.sender_gseq);

  std::vector<web::WriteRecord> ready;
  admit_remote(o, std::move(m.records), addr_key(from), ready);
  apply_ready(o, std::move(ready));
  note_gaps(o);
  if (o.outdated &&
      o.cfg.policy.object_outdate_reaction == OutdateReaction::kDemand &&
      !o.cfg.is_primary) {
    demand_fetch(o);
  }
}

void StoreEngine::handle_snapshot(ObjectState& o,
                                  const msg::EnvelopeView& env) {
  SnapshotMsg::View m = SnapshotMsg::decode_view(env.body);
  apply_snapshot(o, m.document, m.clock, m.gseq);
}

void StoreEngine::apply_snapshot(ObjectState& o, util::BytesView document,
                                 const coherence::VectorClock& clock,
                                 std::uint64_t gseq) {
  // Only move forward: ignore snapshots older than our state.
  const bool newer = clock.dominates(o.applied_clock) &&
                     (clock != o.applied_clock || gseq > o.applied_gseq);
  if (!newer && !(gseq > o.applied_gseq)) return;
  o.semantics.restore(document);
  finish_state_adoption(o, clock, gseq);
}

void StoreEngine::apply_state_transfer(ObjectState& o,
                                       const StateTransfer::View& st) {
  // Only move forward, exactly like apply_snapshot: a transfer that
  // proves nothing new is skipped (the resync round closes the rest).
  const bool newer = st.clock.dominates(o.applied_clock) &&
                     (st.clock != o.applied_clock || st.gseq > o.applied_gseq);
  if (!newer && !(st.gseq > o.applied_gseq)) return;
  if (st.full) {
    o.semantics.restore(st.snapshot);
  } else {
    // Page-granular adoption: shipped pages overwrite, drops erase and
    // leave tombstones. The result is byte-identical to restoring the
    // sender's full snapshot.
    o.semantics.document().apply_delta(st.delta);
  }
  // Lineage must snapshot the document version BEFORE the adoption tail
  // runs: finish_state_adoption can flush gated/buffered records into
  // the document, after which we no longer byte-mirror the sender and a
  // later floor request would wrongly claim we do.
  note_transfer_lineage(o, st.source, st.version);
  finish_state_adoption(o, st.clock, st.gseq);
}

void StoreEngine::note_transfer_lineage(ObjectState& o, StoreId source,
                                        std::uint64_t version) {
  o.snap_source = source;
  o.snap_source_addr = o.cfg.upstream;
  o.snap_source_version = version;
  o.snap_doc_version = o.semantics.document().version();
}

void StoreEngine::finish_state_adoption(ObjectState& o,
                                        const coherence::VectorClock& clock,
                                        std::uint64_t gseq) {
  o.applied_clock.merge(clock);
  o.applied_gseq = std::max(o.applied_gseq, gseq);
  GLOBE_CHECK_HOOK(
      on_state_adoption(&o, config_.store_id, o.cfg.object, o.applied_gseq));
  o.known_clock.merge(clock);
  o.known_gseq = std::max(o.known_gseq, gseq);
  // The records the snapshot covered were never appended to our log:
  // requesters below this horizon must get a snapshot cutover from us,
  // never a delta with a hole in it.
  o.log.note_snapshot(clock, gseq,
                      o.cfg.policy.model == ObjectModel::kSequential);
  record_snapshot_event(o);
  o.invalid_pages.clear();
  std::vector<web::WriteRecord> ready;
  o.orderer->reset_to(o.applied_clock, o.applied_gseq, ready);
  if (o.mw_filter != nullptr) {
    // The monotonic-writes cursor moves with the snapshot too, or
    // records above the snapshot horizon would wait forever for
    // records the snapshot already covers.
    std::vector<web::WriteRecord> gated;
    o.mw_filter->reset_to(o.applied_clock, o.applied_gseq, gated);
    for (auto& g : gated) o.orderer->admit(std::move(g), ready);
  }
  for (auto& rec : ready) rec.transient_origin = addr_key(o.cfg.upstream);
  apply_ready(o, std::move(ready));
  // Forward the (new) state downstream in full-transfer mode.
  if (o.cfg.policy.coherence_transfer == CoherenceTransfer::kFull &&
      o.cfg.policy.initiative == TransferInitiative::kPush &&
      !o.subscribers.empty()) {
    if (o.cfg.policy.instant == TransferInstant::kLazy) {
      o.lazy_dirty = true;
      for (const Subscriber& s : o.subscribers) {
        o.lazy_queues[addr_key(s.address)];  // mark target; body is snapshot
      }
    } else {
      std::vector<Address> targets;
      targets.reserve(o.subscribers.size());
      for (const Subscriber& s : o.subscribers) targets.push_back(s.address);
      send_coherence_multi(o, targets, {});
    }
  }
  note_gaps(o);
  unpark_ready(o);
}

void StoreEngine::handle_invalidate(ObjectState& o, const Address& from,
                                    const msg::EnvelopeView& env) {
  InvalidateMsg m = InvalidateMsg::decode(env.body);
  // Same duplicate suppression as handle_notify: excluding the sender
  // stops a two-store cycle, but a longer propagation cycle still loops
  // unless no-news invalidations are dropped. Anything here is news if
  // it invalidates a page that was still valid or advances the frontier.
  bool news = m.known_gseq > o.known_gseq ||
              !o.known_clock.dominates(m.known_clock);
  for (const auto& p : m.pages) news |= o.invalid_pages.insert(p).second;
  o.known_clock.merge(m.known_clock);
  o.known_gseq = std::max(o.known_gseq, m.known_gseq);
  note_gaps(o);
  if (news) {
    // Forward invalidations downstream (re-serialized from the borrowed
    // body; one shared datagram for the whole fan-out).
    std::vector<Address> forward;
    for (const Subscriber& s : o.subscribers) {
      if (s.address != from) forward.push_back(s.address);
    }
    if (config_.shared_wire) {
      comm_.multicast_with(forward, msg::MsgType::kInvalidate, o.cfg.object,
                           [&](util::Writer& w) { w.raw(env.body); });
    } else {
      for (const Address& t : forward) {
        comm_.send_with(t, msg::MsgType::kInvalidate, o.cfg.object,
                        [&](util::Writer& w) { w.raw(env.body); });
      }
    }
  }
  if (o.cfg.policy.object_outdate_reaction == OutdateReaction::kDemand) {
    std::vector<std::string> pages = m.pages;
    if (o.cfg.policy.access_transfer == AccessTransfer::kFull) pages.clear();
    demand_fetch(o, std::move(pages));
  }
}

void StoreEngine::handle_notify(ObjectState& o, const Address& from,
                                const msg::EnvelopeView& env) {
  NotifyMsg m = NotifyMsg::decode(env.body);
  // Forward only notifications that advance our known frontier, and
  // never back to the sender. View-driven re-parenting can transiently
  // wire two mirrors as each other's subscriber; an unconditional
  // re-broadcast then circulates the same frontier around that cycle
  // forever, each hop re-amplifying it into its whole fan-out. A notify
  // that taught us nothing was already propagated when we first learned
  // its frontier, so dropping the duplicate loses no information.
  const bool news = m.known_gseq > o.known_gseq ||
                    !o.known_clock.dominates(m.known_clock);
  o.known_clock.merge(m.known_clock);
  o.known_gseq = std::max(o.known_gseq, m.known_gseq);
  note_gaps(o);
  if (news) {
    std::vector<Address> forward;
    forward.reserve(o.subscribers.size());
    for (const Subscriber& s : o.subscribers) {
      if (s.address != from) forward.push_back(s.address);
    }
    if (config_.shared_wire) {
      comm_.multicast_with(forward, msg::MsgType::kNotify, o.cfg.object,
                           [&](util::Writer& w) { w.raw(env.body); });
    } else {
      for (const Address& t : forward) {
        comm_.send_with(t, msg::MsgType::kNotify, o.cfg.object,
                        [&](util::Writer& w) { w.raw(env.body); });
      }
    }
  }
  if (o.outdated &&
      o.cfg.policy.object_outdate_reaction == OutdateReaction::kDemand) {
    demand_fetch(o);
  }
}

void StoreEngine::advertise_clock(ObjectState& o) {
  if (o.subscribers.empty()) return;
  NotifyMsg m;
  m.known_clock = o.applied_clock;
  m.known_gseq = o.applied_gseq;
  if (config_.shared_wire) {
    std::vector<Address> targets;
    targets.reserve(o.subscribers.size());
    for (const Subscriber& s : o.subscribers) targets.push_back(s.address);
    comm_.multicast_with(targets, msg::MsgType::kNotify, o.cfg.object,
                         [&](util::Writer& w) { m.encode(w); },
                         /*background=*/true);
    return;
  }
  for (const Subscriber& s : o.subscribers) {
    comm_.send_with_background(s.address, msg::MsgType::kNotify,
                               o.cfg.object,
                               [&](util::Writer& w) { m.encode(w); });
  }
}

std::vector<web::WriteRecord> StoreEngine::state_as_records(
    const ObjectState& o) {
  // The whole document expressed as one LWW state record per page (the
  // page's last writer, total-order position, and Lamport stamp travel
  // with it). Used when a peer is behind the log's compaction horizon:
  // unlike a restore-snapshot, these merge commutatively through the
  // peer's orderer. Pages deleted before compaction travel as delete
  // records reconstructed from the document's tombstones, so a peer
  // still holding the stale page drops it instead of resurrecting it —
  // this closes the tombstone-less LWW caveat (docs/perf.md).
  const web::WebDocument& doc = o.semantics.document();
  std::vector<web::WriteRecord> out;
  const auto pages = doc.page_names();
  out.reserve(pages.size() + doc.tombstones().size());
  for (const auto& page : pages) out.push_back(record_for_page(o, page));
  for (const auto& [page, t] : doc.tombstones()) {
    if (!t.writer.valid()) continue;  // deletion of unknown identity
    web::WriteRecord rec;
    rec.op = web::WriteOp::kDelete;
    rec.page = page;
    rec.wid = t.writer;
    rec.lamport = t.lamport;
    rec.global_seq = t.global_seq;
    rec.issued_at_us = t.deleted_at_us;
    out.push_back(std::move(rec));
  }
  return out;
}

web::WriteRecord StoreEngine::record_for_page(const ObjectState& o,
                                              const std::string& page) {
  const auto p = o.semantics.document().get(page);
  web::WriteRecord rec;
  rec.page = page;
  if (!p) {
    rec.op = web::WriteOp::kDelete;
    return rec;
  }
  rec.op = web::WriteOp::kPut;
  rec.content = p->content;
  rec.mime = p->mime;
  rec.wid = p->last_writer;
  rec.global_seq = p->global_seq;
  rec.lamport = p->lamport;
  rec.issued_at_us = p->updated_at_us;
  return rec;
}

std::vector<web::WriteRecord> StoreEngine::records_since(
    const ObjectState& o, const coherence::VectorClock& have,
    std::uint64_t have_gseq, const std::vector<std::string>& pages) const {
  return config_.naive_log_scan
             ? o.log.records_since_naive(have, have_gseq, pages)
             : o.log.records_since(have, have_gseq, pages);
}

void StoreEngine::handle_fetch_request(ObjectState& o, const Address& from,
                                       const msg::EnvelopeView& env) {
  FetchRequest m = FetchRequest::decode(env.body);
  FetchReply rep;
  rep.clock = o.applied_clock;
  rep.gseq = o.applied_gseq;

  if (m.validate_only) {
    GLOBE_ASSERT_MSG(!m.pages.empty(), "validate requires a page");
    const auto p = o.semantics.document().get(m.pages.front());
    if (p && m.have_lamport != 0 && p->lamport == m.have_lamport) {
      rep.not_modified = true;
    } else if (p) {
      rep.records.push_back(record_for_page(o, m.pages.front()));
    }
    // Page absent: empty records; the cache serves not-found.
  } else if (m.want_full ||
             !o.log.can_serve(m.have_clock, m.have_gseq,
                              o.cfg.policy.model ==
                                  ObjectModel::kSequential)) {
    // Snapshot cutover: either the requester asked for full state, or it
    // is behind the log's compaction horizon and a delta can no longer
    // be computed for it. Only the forced case counts as a cutover in
    // the metrics (it is the compaction policy's cost signal).
    if (!m.want_full && metrics_ != nullptr) {
      metrics_->record_snapshot_cutover();
    }
    if (m.accepts_delta && !m.want_full) {
      // Deferred cutover: the requester takes page-granular snapshots —
      // it follows up with its page summary (kSnapshotDeltaRequest) and
      // receives only the pages it is missing.
      rep.need_snapshot = true;
    } else {
      rep.full = true;
      rep.snapshot = o.semantics.snapshot();
      // Routine want_full polls are the policy's normal transfer
      // traffic; only the forced cutover counts as a full state
      // transfer (same split as record_snapshot_cutover above).
      if (!m.want_full && metrics_ != nullptr) {
        metrics_->record_full_snapshot();
      }
    }
  } else {
    rep.records = records_since(o, m.have_clock, m.have_gseq, m.pages);
  }
  comm_.reply_with(from, msg::MsgType::kFetchReply, o.cfg.object,
                   env.request_id, [&](util::Writer& w) { rep.encode(w); });
}

void StoreEngine::handle_subscribe(ObjectState& o, const Address& from,
                                   const msg::EnvelopeView& env) {
  SubscribeMsg m = SubscribeMsg::decode(env.body);
  auto it = std::find_if(o.subscribers.begin(), o.subscribers.end(),
                         [&](const Subscriber& s) {
                           return s.address == m.subscriber;
                         });
  if (it == o.subscribers.end()) {
    o.subscribers.push_back(Subscriber{m.subscriber, m.store_id});
    if (config_.flow != nullptr) {
      // Fresh subscription: clear any stale backpressure verdict (the
      // subscriber may be re-joining after an eviction) so its windowed
      // channel restarts clean alongside the state transfer below.
      config_.flow->reset_peer(address(), m.subscriber);
      const std::uint64_t key = addr_key(m.subscriber);
      paused_peers_.erase(key);
      paused_rounds_.erase(key);
    }
  }
  const StateTransfer st =
      make_state_transfer(o, m.want_delta ? &m.delta_req : nullptr);
  comm_.reply_with(from, msg::MsgType::kSubscribeAck, o.cfg.object,
                   env.request_id, [&](util::Writer& w) { st.encode(w); });
}

void StoreEngine::handle_snapshot_delta_request(ObjectState& o,
                                                const Address& from,
                                                const msg::EnvelopeView& env) {
  serve_snapshot_delta(o, from, env.request_id,
                       SnapshotDeltaRequest::decode(env.body),
                       /*defer_budget=*/100);
}

void StoreEngine::serve_snapshot_delta(ObjectState& o, const Address& from,
                                       std::uint64_t request_id,
                                       SnapshotDeltaRequest req,
                                       int defer_budget) {
  // Same gating as a client read: a store still bootstrapping must not
  // hand out its (empty or partial) document. Re-attempt once state
  // arrives; the budget bounds the loop if bootstrap never completes.
  if (!o.ready && defer_budget > 0) {
    sim_.schedule_after(
        sim::SimDuration::millis(25),
        [this, &o, from, request_id, req = std::move(req),
         defer_budget]() mutable {
          if (!alive_ || departed_) return;
          serve_snapshot_delta(o, from, request_id, std::move(req),
                               defer_budget - 1);
        });
    return;
  }
  // A document fetch is a read: keep the serving counters in step with
  // the invoke path (make_read_reply) so delta-mode clients don't
  // vanish from the read/staleness accounting.
  ++o.reads_served;
  if (metrics_ != nullptr && o.outdated) metrics_->record_stale_serve();
  const StateTransfer st = make_state_transfer(o, &req);
  comm_.reply_with(from, msg::MsgType::kSnapshotDeltaReply, o.cfg.object,
                   request_id, [&](util::Writer& w) { st.encode(w); });
}

SnapshotDeltaRequest StoreEngine::make_delta_request(const ObjectState& o,
                                                     const Address& target) {
  SnapshotDeltaRequest req;
  const web::WebDocument& doc = o.semantics.document();
  if (o.snap_source != kInvalidStore && target == o.snap_source_addr &&
      doc.version() == o.snap_doc_version) {
    // The document has not mutated since the last transfer from this
    // lineage: a bare version floor replaces the page summary.
    req.mode = SnapshotDeltaRequest::Mode::kFloor;
    req.floor_source = o.snap_source;
    req.floor_version = o.snap_source_version;
  } else {
    req.mode = SnapshotDeltaRequest::Mode::kSummary;
    req.have = doc.summarize();
  }
  return req;
}

StateTransfer StoreEngine::make_state_transfer(
    ObjectState& o, const SnapshotDeltaRequest* req) {
  StateTransfer st;
  st.clock = o.applied_clock;
  st.gseq = o.applied_gseq;
  st.source = config_.store_id;
  const web::WebDocument& doc = o.semantics.document();
  st.version = doc.version();

  bool serve_delta = req != nullptr;
  if (serve_delta && req->mode == SnapshotDeltaRequest::Mode::kFloor &&
      (req->floor_source != config_.store_id ||
       !doc.can_delta_since(req->floor_version))) {
    // The floor names another lineage or predates the tombstone
    // horizon: which deletions the requester missed can no longer be
    // proven — fall back to the full snapshot, mirroring the
    // note_snapshot horizon rule.
    serve_delta = false;
  }
  if (req != nullptr && req->mode == SnapshotDeltaRequest::Mode::kFloor) {
    GLOBE_CHECK_HOOK(on_delta_serve(&o, config_.store_id, o.cfg.object,
                                    req->floor_version,
                                    doc.tombstone_horizon(), doc.version(),
                                    /*refused=*/!serve_delta));
  }
  if (serve_delta) {
    web::DeltaStats stats;
    st.full = false;
    st.delta = req->mode == SnapshotDeltaRequest::Mode::kFloor
                   ? doc.encode_delta_since(req->floor_version, &stats)
                   : doc.encode_delta(req->have, &stats);
    if (metrics_ != nullptr) {
      // content_bytes approximates what the full transfer would have
      // cost, without forcing a full encode just for accounting.
      metrics_->record_delta_snapshot(
          stats.pages_shipped + stats.drops_shipped, st.delta.size(),
          doc.content_bytes());
    }
  } else {
    st.full = true;
    st.snapshot = o.semantics.snapshot();
    if (metrics_ != nullptr) metrics_->record_full_snapshot();
  }
  return st;
}

void StoreEngine::request_snapshot_delta(ObjectState& o) {
  if (o.fetch_in_flight || o.cfg.is_primary) return;
  o.fetch_in_flight = true;
  const SnapshotDeltaRequest req = make_delta_request(o, o.cfg.upstream);
  comm_.request_with(
      o.cfg.upstream, msg::MsgType::kSnapshotDeltaRequest, o.cfg.object,
      [&](util::Writer& w) { req.encode(w); },
      [this, &o](bool ok, const Address&, const msg::EnvelopeView& env) {
        o.fetch_in_flight = false;
        if (!ok) {
          // Same retry discipline as demand_fetch: the cutover that got
          // us here still needs to complete.
          if (o.demand_retry_budget > 0 && (o.outdated || !o.parked.empty())) {
            --o.demand_retry_budget;
            sim_.schedule_after(sim::SimDuration::millis(50),
                                [this, &o] { demand_fetch(o); });
          }
          return;
        }
        apply_state_transfer(o, StateTransfer::decode_view(env.body));
        note_gaps(o);
        unpark_ready(o);
      },
      sim::SimDuration::millis(250), /*retries=*/4);
}

void StoreEngine::handle_anti_entropy(ObjectState& o, const Address& from,
                                      const msg::EnvelopeView& env) {
  AntiEntropyRequest m = AntiEntropyRequest::decode(env.body);
  AntiEntropyReply rep;
  rep.responder_clock = o.applied_clock;
  rep.responder_gseq = o.applied_gseq;
  // Anti-entropy runs under multi-master models, whose gseq floors are
  // not contiguous — only clock domination proves the peer is past the
  // compaction horizon (can_serve's gseq shortcut stays off). The
  // records_since gseq filter below is safe because multi-master
  // records are never sequenced (global_seq == 0); it only bites for
  // totally-ordered records the peer genuinely holds.
  if (!o.log.can_serve(m.have_clock, m.have_gseq)) {
    // Peer is behind the compaction horizon: send the current state as
    // records. They merge through the peer's normal orderer/LWW path,
    // which converges even when both peers compacted past each other —
    // a restore-snapshot would apply in neither direction there.
    if (metrics_ != nullptr) metrics_->record_snapshot_cutover();
    rep.records = state_as_records(o);
  } else {
    // Indexed delta honoring the peer's total-order floor — gossip no
    // longer resends totally-ordered records the peer already holds.
    rep.records = records_since(o, m.have_clock, m.have_gseq, {});
  }
  comm_.reply_with(from, msg::MsgType::kAntiEntropyReply, o.cfg.object,
                   env.request_id, [&](util::Writer& w) { rep.encode(w); });
}

namespace {
util::Buffer digest_from(const WriteLog& log,
                         const web::WebDocument& doc, std::uint64_t gseq,
                         const coherence::VectorClock& clock,
                         bool mask_wall_clock) {
  util::Writer w;
  if (mask_wall_clock) {
    std::vector<web::WriteRecord> records = log.retained();
    for (web::WriteRecord& rec : records) rec.issued_at_us = 0;
    web::encode_records(w, records);
  } else {
    web::encode_records(w, log.retained());
  }
  w.bytes(util::BytesView(doc.encode_snapshot(mask_wall_clock)));
  w.varint(gseq);
  clock.encode(w);
  return w.take();
}
}  // namespace

util::Buffer store_state_digest(const StoreEngine& s, bool mask_wall_clock) {
  return digest_from(s.write_log(), s.document(), s.applied_gseq(),
                     s.applied_clock(), mask_wall_clock);
}

util::Buffer store_state_digest(const StoreEngine& s, ObjectId object,
                                bool mask_wall_clock) {
  return digest_from(s.write_log(object), s.document(object),
                     s.applied_gseq(object), s.applied_clock(object),
                     mask_wall_clock);
}

}  // namespace globe::replication
