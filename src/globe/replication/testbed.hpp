// Testbed: assembles a complete deployment of one (or more) distributed
// Web objects on the simulated network.
//
// It owns the simulator, network, naming service, metrics, and history
// recorder, and provides builders matching the paper's layered store
// model (Figure 2): one permanent primary per object, optional extra
// permanent stores, object-initiated mirrors, client-initiated caches,
// and clients bound to any of them. Tests, benchmarks, and examples all
// deploy through this class.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "globe/coherence/history.hpp"
#include "globe/metrics/staleness.hpp"
#include "globe/metrics/stats.hpp"
#include "globe/naming/service.hpp"
#include "globe/net/sim_transport.hpp"
#include "globe/replication/client_binding.hpp"
#include "globe/replication/store_engine.hpp"
#include "globe/sim/network.hpp"
#include "globe/sim/simulator.hpp"

namespace globe::replication {

struct TestbedOptions {
  std::uint64_t seed = 1;
  sim::LinkSpec wan;  // default link between nodes
  bool record_history = true;
  /// Per-store write-log compaction threshold (0 = disabled).
  std::size_t log_compact_threshold = 4096;
  /// Benchmark baseline: force the naive O(history) delta scan.
  bool naive_log_scan = false;
  /// Benchmark baseline: false forces the per-subscriber copy+encode
  /// fan-out instead of shared record batches.
  bool shared_fanout = true;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] coherence::History& history() { return history_; }
  [[nodiscard]] metrics::MetricsSink& metrics() { return metrics_; }
  [[nodiscard]] metrics::StalenessOracle& oracle() { return oracle_; }
  [[nodiscard]] naming::NamingServer& naming() { return *naming_; }

  /// Creates a node (an address space) and returns its id.
  NodeId add_node(std::string name = {});

  /// Transport factory binding endpoints on `node`.
  [[nodiscard]] core::TransportFactory factory(NodeId node);

  /// Creates the permanent primary store of `object` on a fresh node.
  StoreEngine& add_primary(ObjectId object, const core::ReplicationPolicy& policy,
                           std::string node_name = "server");

  /// Adds a non-primary store on a fresh node, subscribed to `upstream`
  /// (defaults to the object's primary).
  StoreEngine& add_store(ObjectId object, naming::StoreClass store_class,
                         const core::ReplicationPolicy& policy,
                         net::Address upstream = {},
                         std::string node_name = {});

  /// Adds a baseline (check-on-read or TTL) client-initiated cache.
  StoreEngine& add_baseline_cache(ObjectId object, CacheMode mode,
                                  sim::SimDuration ttl,
                                  const core::ReplicationPolicy& policy,
                                  net::Address upstream = {},
                                  std::string node_name = {});

  /// Binds a new client on a fresh node. `read_store` defaults to the
  /// object's primary; `write_store` defaults to the primary for
  /// single-master models and to `read_store` otherwise.
  ClientBinding& add_client(ObjectId object, coherence::ClientModel session,
                            net::Address read_store = {},
                            net::Address write_store = {},
                            std::string node_name = {});

  /// Co-locates a client on an existing node (e.g. next to its cache).
  ClientBinding& add_client_at(NodeId node, ObjectId object,
                               coherence::ClientModel session,
                               net::Address read_store,
                               net::Address write_store = {});

  [[nodiscard]] StoreEngine& primary(ObjectId object) {
    return *primaries_.at(object);
  }
  [[nodiscard]] const std::vector<std::unique_ptr<StoreEngine>>& stores()
      const {
    return stores_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<ClientBinding>>& clients()
      const {
    return clients_;
  }

  /// Runs the simulator to quiescence: all in-flight protocol work is
  /// drained, including repeated lazy-flush / pull rounds, so that even
  /// lazy and pull configurations converge. Periodic timers keep
  /// running afterwards (they are background events).
  void settle();

  /// Runs the simulator for a fixed span of virtual time (periodic
  /// timers fire normally).
  void run_for(sim::SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// One synchronous lazy-flush / pull round on every store.
  void flush_propagation();

  /// True when every Globe-mode store of `object` holds a document equal
  /// to the primary's (convergence check).
  [[nodiscard]] bool converged(ObjectId object) const;

  /// Registers store contacts with the naming service under `name`.
  void publish(ObjectId object, const std::string& name);

 private:
  StoreEngine& add_store_impl(StoreConfig cfg, std::string node_name);

  TestbedOptions options_;
  sim::Simulator sim_;
  sim::Network net_;
  coherence::History history_;
  metrics::MetricsSink metrics_;
  metrics::StalenessOracle oracle_;
  std::map<NodeId, PortId> next_port_;
  std::unique_ptr<naming::NamingServer> naming_;
  std::map<ObjectId, StoreEngine*> primaries_;
  std::vector<std::unique_ptr<StoreEngine>> stores_;
  std::vector<std::unique_ptr<ClientBinding>> clients_;
  StoreId next_store_id_ = 1;
  ClientId next_client_id_ = 1;
};

}  // namespace globe::replication
