// Testbed: assembles a complete deployment of one (or more) distributed
// Web objects on the simulated network.
//
// It owns the simulator, network, naming service, metrics, and history
// recorder, and provides builders matching the paper's layered store
// model (Figure 2): one permanent primary per object, optional extra
// permanent stores, object-initiated mirrors, client-initiated caches,
// and clients bound to any of them. Tests, benchmarks, and examples all
// deploy through this class.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "globe/coherence/history.hpp"
#include "globe/coherence/streaming.hpp"
#include "globe/fault/scenario.hpp"
#include "globe/membership/service.hpp"
#include "globe/metrics/staleness.hpp"
#include "globe/metrics/stats.hpp"
#include "globe/naming/service.hpp"
#include "globe/net/sim_transport.hpp"
#include "globe/net/windowed_multicast.hpp"
#include "globe/obs/flight_recorder.hpp"
#include "globe/obs/trace.hpp"
#include "globe/placement/service.hpp"
#include "globe/replication/client_binding.hpp"
#include "globe/replication/store_engine.hpp"
#include "globe/sim/network.hpp"
#include "globe/sim/simulator.hpp"

namespace globe::replication {

struct TestbedOptions {
  std::uint64_t seed = 1;
  sim::LinkSpec wan;  // default link between nodes
  bool record_history = true;
  /// Per-store write-log compaction threshold (0 = disabled).
  std::size_t log_compact_threshold = 4096;
  /// Benchmark baseline: force the naive O(history) delta scan.
  bool naive_log_scan = false;
  /// Benchmark baseline: false forces the per-subscriber copy+encode
  /// fan-out instead of shared record batches.
  bool shared_fanout = true;
  /// Benchmark baseline: false forces a per-destination wire encode
  /// instead of shared multicast datagrams.
  bool shared_wire = true;
  /// Per-store byte-budget compaction (0 = disabled; complements
  /// log_compact_threshold).
  std::size_t log_compact_bytes = 0;
  /// Page-granular delta snapshots on every state-transfer path
  /// (compaction cutover, view-change resync, crash-recovery bootstrap,
  /// client document fetches). False forces the seed full-snapshot
  /// baseline; restored state is byte-identical either way.
  bool delta_snapshots = true;
  /// Dynamic replica membership: stores join an epoch-numbered
  /// per-object view, heartbeat, and react to view changes; clients
  /// watch the view and re-bind when their store leaves it.
  bool enable_membership = false;
  sim::SimDuration membership_heartbeat = sim::SimDuration::millis(100);
  sim::SimDuration failure_timeout = sim::SimDuration::millis(350);
  /// Request timeout/retries for client operations (0 = untimed). Fault
  /// scenarios need these: an operation sent into a partition must fail
  /// instead of pending forever.
  sim::SimDuration client_timeout{};
  int client_retries = 0;
  /// Windowed credit-based multicast on the fan-out lane: every endpoint
  /// runs through one shared net::WindowedMulticast and stores receive
  /// its backpressure events. False (the seed behaviour): datagrams hit
  /// the transport directly. Delivered state is byte-identical.
  bool windowed_multicast = false;
  net::WindowOptions window;
  /// Sharded deployment: > 0 stands up a placement server with an
  /// epoch-1 layout of this many shards. Stores are then added with
  /// add_shard_store(), objects distributed with place_objects(), and
  /// clients bound with add_placed_client() (they resolve stores through
  /// the cached layout instead of static addresses).
  std::uint32_t shards = 0;
};

/// Membership scope shared by every sharded store: one cluster-wide
/// member list the membership service projects into per-shard subgroup
/// views (StoreConfig::membership_scope).
inline constexpr std::uint64_t kShardMembershipScope = 0xC1A5'7E21ull;

/// Seed-object id of shard `s`'s stores (base + s). Every StoreEngine
/// hosts its config object from birth; sharded stores anchor on a
/// per-shard id far outside the workload's object range so placed
/// objects never collide with it.
inline constexpr ObjectId kShardAnchorBase = 0xA11C'0000ull;

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});
  ~Testbed();

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] coherence::History& history() { return history_; }
  [[nodiscard]] metrics::MetricsSink& metrics() { return metrics_; }
  [[nodiscard]] metrics::StalenessOracle& oracle() { return oracle_; }
  [[nodiscard]] naming::NamingServer& naming() { return *naming_; }
  /// Valid only with TestbedOptions::enable_membership.
  [[nodiscard]] membership::MembershipService& membership() {
    return *membership_;
  }
  [[nodiscard]] bool membership_enabled() const {
    return membership_ != nullptr;
  }
  /// Non-null with TestbedOptions::windowed_multicast (window stats and
  /// queue-depth probes for tests/benchmarks).
  [[nodiscard]] net::WindowedMulticast* window() { return window_.get(); }

  /// Attaches an incremental StreamingChecker to the history recorder:
  /// events are verified as they are recorded and retired once the
  /// cluster's stability horizon passes them (bounded retained-event
  /// memory). Sessions of already-bound clients are registered, and
  /// clients added afterwards register automatically. Call before any
  /// client issues operations.
  coherence::StreamingChecker& enable_streaming(
      coherence::ObjectModel model,
      coherence::StreamingChecker::Options opts);
  coherence::StreamingChecker& enable_streaming(coherence::ObjectModel model) {
    return enable_streaming(model, coherence::StreamingChecker::Options{});
  }
  /// Non-null after enable_streaming().
  [[nodiscard]] coherence::StreamingChecker* streaming() {
    return streaming_.get();
  }

  /// Creates a node (an address space) and returns its id.
  NodeId add_node(std::string name = {});

  /// Transport factory binding endpoints on `node`.
  [[nodiscard]] core::TransportFactory factory(NodeId node);

  /// Creates the permanent primary store of `object` on a fresh node.
  StoreEngine& add_primary(ObjectId object, const core::ReplicationPolicy& policy,
                           std::string node_name = "server");

  /// Adds a non-primary store on a fresh node, subscribed to `upstream`
  /// (defaults to the object's primary).
  StoreEngine& add_store(ObjectId object, naming::StoreClass store_class,
                         const core::ReplicationPolicy& policy,
                         net::Address upstream = {},
                         std::string node_name = {});

  /// Adds a baseline (check-on-read or TTL) client-initiated cache.
  StoreEngine& add_baseline_cache(ObjectId object, CacheMode mode,
                                  sim::SimDuration ttl,
                                  const core::ReplicationPolicy& policy,
                                  net::Address upstream = {},
                                  std::string node_name = {});

  /// Binds a new client on a fresh node. `read_store` defaults to the
  /// object's primary; `write_store` defaults to the primary for
  /// single-master models and to `read_store` otherwise.
  ClientBinding& add_client(ObjectId object, coherence::ClientModel session,
                            net::Address read_store = {},
                            net::Address write_store = {},
                            std::string node_name = {});

  /// Co-locates a client on an existing node (e.g. next to its cache).
  ClientBinding& add_client_at(NodeId node, ObjectId object,
                               coherence::ClientModel session,
                               net::Address read_store,
                               net::Address write_store = {});

  // ---- sharded deployments (TestbedOptions::shards > 0) --------------

  /// Valid only when sharded.
  [[nodiscard]] placement::PlacementServer& placement() {
    return *placement_;
  }
  [[nodiscard]] bool sharded() const { return placement_ != nullptr; }

  /// Adds a store serving `shard` on a fresh node, registered as a
  /// placement contact. The first store of each shard must be its
  /// primary (`primary = true`, permanent class); later stores subscribe
  /// to it. Sharded stores join the cluster membership scope tagged with
  /// their shard.
  StoreEngine& add_shard_store(ShardId shard,
                               naming::StoreClass store_class,
                               const core::ReplicationPolicy& policy,
                               bool primary = false,
                               std::string node_name = {});

  /// Places every object on its layout shard: a primary replica on the
  /// shard's primary store, secondary replicas on the shard's other
  /// stores (subscribed to the primary). Policies are inherited from the
  /// hosting store.
  void place_objects(const std::vector<ObjectId>& objects);

  /// Binds a client that resolves every object's stores through the
  /// placement server (no static store addresses).
  ClientBinding& add_placed_client(
      coherence::ClientModel session,
      coherence::ObjectModel object_model = coherence::ObjectModel::kPram,
      std::string node_name = {});

  [[nodiscard]] StoreEngine& shard_primary(ShardId shard) {
    return *shard_primaries_.at(shard);
  }
  [[nodiscard]] const std::vector<StoreEngine*>& shard_stores(
      ShardId shard) const {
    return shard_stores_.at(shard);
  }

  [[nodiscard]] StoreEngine& primary(ObjectId object) {
    return *primaries_.at(object);
  }
  [[nodiscard]] const std::vector<std::unique_ptr<StoreEngine>>& stores()
      const {
    return stores_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<ClientBinding>>& clients()
      const {
    return clients_;
  }

  /// Runs the simulator to quiescence: all in-flight protocol work is
  /// drained, including repeated lazy-flush / pull rounds, so that even
  /// lazy and pull configurations converge. Periodic timers keep
  /// running afterwards (they are background events).
  void settle();

  /// Runs the simulator for a fixed span of virtual time (periodic
  /// timers fire normally).
  void run_for(sim::SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// One synchronous lazy-flush / pull round on every store.
  void flush_propagation();

  /// True when every Globe-mode store of `object` holds a document equal
  /// to the primary's (convergence check).
  [[nodiscard]] bool converged(ObjectId object) const;

  /// Registers store contacts with the naming service under `name`.
  void publish(ObjectId object, const std::string& name);

  // ---- fault injection (driven by fault::ScenarioEngine) -------------

  /// Crash-stops store `index` (construction order) and cuts its node
  /// off the network: in-flight traffic to and from it is lost.
  void crash_store(std::size_t index);

  /// Reconnects the node and restarts the store; it rejoins the view
  /// and re-bootstraps via the snapshot + resync path.
  void recover_store(std::size_t index);

  /// Graceful departure of store `index`.
  void leave_store(std::size_t index);

  /// Cuts the network between the two groups of stores. Each store's
  /// currently-bound clients are co-partitioned with it; the well-known
  /// services (naming, membership) stay on the primary's side, so the
  /// minority side gets evicted from the view until the heal.
  void partition_stores(const std::vector<std::size_t>& side_a,
                        const std::vector<std::size_t>& side_b);

  /// Heals every scripted partition (crashed nodes stay down).
  void heal_partitions() { net_.heal_all(); }

  /// Spawner used by flash-crowd join events. Defaults to cloning a
  /// Globe cache under the first object's primary with its policy.
  using StoreSpawner = std::function<StoreEngine&(Testbed&)>;
  void set_store_spawner(StoreSpawner spawner) {
    spawner_ = std::move(spawner);
  }
  void join_stores(std::size_t count);

  // ---- observability (obs::Tracer + flight recorder) -----------------

  struct ObservabilityOptions {
    std::size_t trace_capacity = 1 << 16;
    std::uint64_t sample_every = 1;  // trace 1-in-N writes
    std::size_t gauge_ring = 512;    // points retained per gauge
    sim::SimDuration gauge_period = sim::SimDuration::millis(50);
    /// On a monitor trip, write an .obstrace dump (the spans and gauge
    /// rings from the preceding window) to this path. Empty = no file.
    std::string trip_dump_path;
    sim::SimDuration trip_dump_window = sim::SimDuration::seconds(5);
  };

  /// Puts the process tracer on the simulated clock, registers gauges
  /// over this testbed's components (lazy-park depths, write-log bytes,
  /// window pressure, view epochs, placement version, staleness) into a
  /// flight recorder sampled every gauge_period, and hooks monitor trips
  /// into the trace (annotation + optional window dump). The hooks are
  /// process-global and uninstalled by the destructor — one observed
  /// testbed at a time. Gauges aggregate over stores added later, too.
  void enable_observability(ObservabilityOptions opts);
  void enable_observability() { enable_observability(ObservabilityOptions{}); }

  /// Non-null after enable_observability().
  [[nodiscard]] obs::FlightRecorder* recorder() { return recorder_.get(); }

  /// Drains the tracer's derived accept -> k-th-subscriber propagation
  /// latencies into metrics() (propagation_first_us / propagation_last_us).
  obs::PropagationStats harvest_propagation();

 private:
  void register_observability_gauges();
  void on_monitor_trip(const std::string& monitor);
  StoreEngine& add_store_impl(StoreConfig cfg, std::string node_name);
  [[nodiscard]] std::vector<NodeId> side_nodes(
      const std::vector<std::size_t>& side) const;

  TestbedOptions options_;
  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<net::WindowedMulticast> window_;  // shared by all endpoints
  coherence::History history_;
  std::unique_ptr<coherence::StreamingChecker> streaming_;
  metrics::MetricsSink metrics_;
  metrics::StalenessOracle oracle_;
  std::map<NodeId, PortId> next_port_;
  std::unique_ptr<naming::NamingServer> naming_;
  std::unique_ptr<membership::MembershipService> membership_;
  std::unique_ptr<placement::PlacementServer> placement_;
  std::vector<NodeId> service_nodes_;  // naming + membership + placement
  std::map<ObjectId, StoreEngine*> primaries_;
  std::map<ShardId, StoreEngine*> shard_primaries_;
  std::map<ShardId, std::vector<StoreEngine*>> shard_stores_;
  std::vector<std::unique_ptr<StoreEngine>> stores_;
  std::vector<std::unique_ptr<ClientBinding>> clients_;
  StoreSpawner spawner_;
  StoreId next_store_id_ = 1;
  ClientId next_client_id_ = 1;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<sim::PeriodicTimer> gauge_timer_;
  ObservabilityOptions obs_opts_;
  bool obs_enabled_ = false;
};

/// Adapter presenting a Testbed to the fault scenario engine.
class TestbedFaultHost final : public fault::FaultHost {
 public:
  explicit TestbedFaultHost(Testbed& bed) : bed_(bed) {}

  [[nodiscard]] std::size_t store_count() const override {
    return bed_.stores().size();
  }
  [[nodiscard]] bool store_alive(std::size_t index) const override {
    const auto& s = *bed_.stores().at(index);
    return s.alive() && !s.departed();
  }
  [[nodiscard]] bool store_is_primary(std::size_t index) const override {
    return bed_.stores().at(index)->config().is_primary;
  }
  [[nodiscard]] ShardId store_shard(std::size_t index) const override {
    return bed_.stores().at(index)->shard();
  }
  [[nodiscard]] bool store_hosts_object(std::size_t index,
                                        ObjectId object) const override {
    return bed_.stores().at(index)->has_object(object);
  }
  void crash_store(std::size_t index) override { bed_.crash_store(index); }
  void recover_store(std::size_t index) override {
    bed_.recover_store(index);
  }
  void leave_store(std::size_t index) override { bed_.leave_store(index); }
  void join_stores(std::size_t count) override { bed_.join_stores(count); }
  void partition(const std::vector<std::size_t>& side_a,
                 const std::vector<std::size_t>& side_b) override {
    bed_.partition_stores(side_a, side_b);
  }
  void heal() override { bed_.heal_partitions(); }

 private:
  Testbed& bed_;
};

}  // namespace globe::replication
