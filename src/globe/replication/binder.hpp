// Binder: the paper's binding step (Section 2).
//
// "In order for a process to invoke an object's method, it must first
//  bind to that object by contacting it at one of the object's contact
//  points. Binding results in an interface belonging to the object being
//  placed in the client's address space, along with an implementation of
//  that interface."
//
// The Binder resolves a symbolic name through the naming service, asks
// the location service for the object's contact points, picks a read
// store following the layered-store preference (client-initiated, then
// object-initiated, then permanent — Section 3.1: "It is generally up to
// the client to decide to which replica he will bind") and the primary
// as write store, and instantiates the client local object.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "globe/naming/service.hpp"
#include "globe/replication/client_binding.hpp"

namespace globe::replication {

/// Client-side binding preferences.
struct BindRequest {
  ClientId client = 1;
  coherence::ClientModel session = coherence::ClientModel::kNone;
  /// Object-based model of the target object; determines whether writes
  /// are routed to the primary. (A full system would advertise this via
  /// the location service; the caller supplies it here.)
  coherence::ObjectModel object_model = coherence::ObjectModel::kPram;
  /// Preferred store layer for reads.
  naming::StoreClass preferred_layer = naming::StoreClass::kClientInitiated;
  sim::SimDuration timeout{};
  int retries = 0;
};

class Binder {
 public:
  Binder(core::TransportFactory factory, sim::Simulator& sim,
         net::Address naming_server)
      : factory_(std::move(factory)),
        sim_(sim),
        naming_(factory_, &sim, naming_server) {}

  using BindHandler =
      std::function<void(bool ok, std::unique_ptr<ClientBinding> binding)>;

  /// Resolves `name` and binds. The handler receives the new client
  /// local object (nullptr on failure: unknown name or no contacts).
  void bind(const std::string& name, BindRequest request, BindHandler done) {
    naming_.lookup(name, [this, request = std::move(request),
                          done = std::move(done)](bool ok,
                                                  ObjectId object) mutable {
      if (!ok) {
        done(false, nullptr);
        return;
      }
      naming_.locate(object, [this, object, request = std::move(request),
                              done = std::move(done)](
                                 bool found,
                                 std::vector<naming::ContactPoint> contacts) {
        if (!found || contacts.empty()) {
          done(false, nullptr);
          return;
        }
        done(true, make_binding(object, request, contacts));
      });
    });
  }

  /// Contact selection, exposed for tests: nearest layer at or below the
  /// preferred one; falls back upward (cache -> mirror -> permanent).
  /// The logic lives in naming/contact.hpp so that view-change rebinding
  /// (ClientBinding) resolves contacts exactly like the initial bind.
  static const naming::ContactPoint* choose_read_contact(
      const std::vector<naming::ContactPoint>& contacts,
      naming::StoreClass preferred) {
    return naming::choose_read_contact(contacts, preferred);
  }

  static const naming::ContactPoint* choose_write_contact(
      const std::vector<naming::ContactPoint>& contacts,
      coherence::ObjectModel model, const naming::ContactPoint* read_choice) {
    const bool multi_master = model == coherence::ObjectModel::kCausal ||
                              model == coherence::ObjectModel::kEventual;
    return naming::choose_write_contact(contacts, multi_master, read_choice);
  }

 private:
  std::unique_ptr<ClientBinding> make_binding(
      ObjectId object, const BindRequest& request,
      const std::vector<naming::ContactPoint>& contacts) {
    const auto* read =
        naming::choose_read_contact(contacts, request.preferred_layer,
                                    naming::contact_spread(object,
                                                           request.client));
    const auto* write =
        choose_write_contact(contacts, request.object_model, read);
    if (read == nullptr) return nullptr;
    BindOptions opts;
    opts.object = object;
    opts.client = request.client;
    opts.session = request.session;
    opts.object_model = request.object_model;
    opts.read_store = read->address;
    opts.write_store = write != nullptr ? write->address : read->address;
    opts.timeout = request.timeout;
    opts.retries = request.retries;
    return std::make_unique<ClientBinding>(factory_, sim_, std::move(opts));
  }

  core::TransportFactory factory_;
  sim::Simulator& sim_;
  naming::NamingClient naming_;
};

}  // namespace globe::replication
