#include "globe/replication/orderer.hpp"

namespace globe::replication {

Admission PramOrderer::admit(web::WriteRecord rec,
                             std::vector<web::WriteRecord>& ready) {
  auto& applied = applied_[rec.wid.client];
  if (rec.wid.seq <= applied) return Admission::kDuplicate;
  if (rec.wid.seq != applied + 1) {
    auto [it, inserted] = pending_[rec.wid.client].try_emplace(
        rec.wid.seq, std::move(rec));
    (void)it;
    return inserted ? Admission::kBuffered : Admission::kDuplicate;
  }
  applied = rec.wid.seq;
  const ClientId client = rec.wid.client;
  ready.push_back(std::move(rec));
  drain(client, ready);
  return Admission::kApplied;
}

void PramOrderer::drain(ClientId client, std::vector<web::WriteRecord>& ready) {
  auto pit = pending_.find(client);
  if (pit == pending_.end()) return;
  auto& applied = applied_[client];
  auto& buf = pit->second;
  // Drop buffered records already covered, then drain what is contiguous.
  while (!buf.empty() && buf.begin()->first <= applied) buf.erase(buf.begin());
  while (!buf.empty() && buf.begin()->first == applied + 1) {
    applied = buf.begin()->first;
    ready.push_back(std::move(buf.begin()->second));
    buf.erase(buf.begin());
  }
  if (buf.empty()) pending_.erase(pit);
}

void PramOrderer::reset_to(const VectorClock& clock, std::uint64_t /*gseq*/,
                           std::vector<web::WriteRecord>& ready) {
  for (const auto& [client, seq] : clock.entries()) {
    auto& applied = applied_[client];
    if (seq > applied) applied = seq;
  }
  const auto clients = [this] {
    std::vector<ClientId> ids;
    for (const auto& [c, _] : pending_) ids.push_back(c);
    return ids;
  }();
  for (ClientId c : clients) drain(c, ready);
}

bool PramOrderer::has_gaps() const { return !pending_.empty(); }

std::size_t PramOrderer::buffered() const {
  std::size_t n = 0;
  for (const auto& [_, buf] : pending_) n += buf.size();
  return n;
}

Admission FifoOrderer::admit(web::WriteRecord rec,
                             std::vector<web::WriteRecord>& ready) {
  auto& latest = latest_[rec.wid.client];
  if (rec.wid.seq <= latest) return Admission::kSuperseded;
  latest = rec.wid.seq;
  ready.push_back(std::move(rec));
  return Admission::kApplied;
}

void FifoOrderer::reset_to(const VectorClock& clock, std::uint64_t /*gseq*/,
                           std::vector<web::WriteRecord>& /*ready*/) {
  for (const auto& [client, seq] : clock.entries()) {
    auto& latest = latest_[client];
    if (seq > latest) latest = seq;
  }
}

Admission SequentialOrderer::admit(web::WriteRecord rec,
                                   std::vector<web::WriteRecord>& ready) {
  if (rec.global_seq == 0) {
    // Records without an assigned sequence cannot be ordered; treat as a
    // protocol error surfaced by tests, applied nowhere.
    return Admission::kDuplicate;
  }
  if (rec.global_seq <= applied_) return Admission::kDuplicate;
  if (rec.global_seq != applied_ + 1) {
    auto [it, inserted] = pending_.try_emplace(rec.global_seq, std::move(rec));
    (void)it;
    return inserted ? Admission::kBuffered : Admission::kDuplicate;
  }
  applied_ = rec.global_seq;
  ready.push_back(std::move(rec));
  drain(ready);
  return Admission::kApplied;
}

void SequentialOrderer::drain(std::vector<web::WriteRecord>& ready) {
  while (!pending_.empty() && pending_.begin()->first <= applied_) {
    pending_.erase(pending_.begin());
  }
  while (!pending_.empty() && pending_.begin()->first == applied_ + 1) {
    applied_ = pending_.begin()->first;
    ready.push_back(std::move(pending_.begin()->second));
    pending_.erase(pending_.begin());
  }
}

void SequentialOrderer::reset_to(const VectorClock& /*clock*/,
                                 std::uint64_t gseq,
                                 std::vector<web::WriteRecord>& ready) {
  if (gseq > applied_) applied_ = gseq;
  drain(ready);
}

bool CausalOrderer::applicable(const web::WriteRecord& rec) const {
  // All causal predecessors must be applied. The record's own previous
  // write (seq-1 of the same writer) is an implicit dependency.
  if (rec.wid.seq > 1 && applied_.get(rec.wid.client) < rec.wid.seq - 1) {
    return false;
  }
  return applied_.dominates(rec.deps);
}

Admission CausalOrderer::admit(web::WriteRecord rec,
                               std::vector<web::WriteRecord>& ready) {
  if (applied_.covers(rec.wid)) return Admission::kDuplicate;
  for (const auto& p : pending_) {
    if (p.wid == rec.wid) return Admission::kDuplicate;
  }
  if (!applicable(rec)) {
    pending_.push_back(std::move(rec));
    return Admission::kBuffered;
  }
  applied_.observe(rec.wid);
  ready.push_back(std::move(rec));
  drain(ready);
  return Admission::kApplied;
}

void CausalOrderer::drain(std::vector<web::WriteRecord>& ready) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (applicable(*it)) {
        applied_.observe(it->wid);
        ready.push_back(std::move(*it));
        pending_.erase(it);
        progress = true;
        break;
      }
    }
  }
}

Admission EventualOrderer::admit(web::WriteRecord rec,
                                 std::vector<web::WriteRecord>& ready) {
  if (!seen_.insert(rec.wid).second) return Admission::kDuplicate;
  ready.push_back(std::move(rec));
  return Admission::kApplied;
}

void EventualOrderer::reset_to(const VectorClock& /*clock*/,
                               std::uint64_t /*gseq*/,
                               std::vector<web::WriteRecord>& /*ready*/) {
  // Nothing to reconstruct: duplicates of pre-snapshot records are
  // rejected by last-writer-wins at the document.
}

void CausalOrderer::reset_to(const VectorClock& clock, std::uint64_t /*gseq*/,
                             std::vector<web::WriteRecord>& ready) {
  applied_.merge(clock);
  std::erase_if(pending_, [this](const web::WriteRecord& r) {
    return applied_.covers(r.wid);
  });
  drain(ready);
}

std::unique_ptr<Orderer> make_orderer(coherence::ObjectModel model) {
  using coherence::ObjectModel;
  switch (model) {
    case ObjectModel::kSequential:
      return std::make_unique<SequentialOrderer>();
    case ObjectModel::kPram:
      return std::make_unique<PramOrderer>();
    case ObjectModel::kFifoPram:
      return std::make_unique<FifoOrderer>();
    case ObjectModel::kCausal:
      return std::make_unique<CausalOrderer>();
    case ObjectModel::kEventual:
      return std::make_unique<EventualOrderer>();
  }
  return std::make_unique<EventualOrderer>();
}

}  // namespace globe::replication
