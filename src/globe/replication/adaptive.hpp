// Self-adaptive replication policies.
//
// Section 3.3: "Ideally, the implementation parameters can be modified
// dynamically as the usage characteristics of an object changes.
// However, self-adaptive policies are beyond the scope of this paper;
// they are a subject of future research." — and Section 5 repeats the
// plan. This module implements that future work on top of the runtime
// strategy replacement the framework already supports
// (StoreEngine::update_policy).
//
// The AdaptiveController attaches to an object's primary store, samples
// its read/write counters periodically, and adjusts the transfer-instant
// parameter: frequent updates on a replicated object favour lazy
// (periodic, aggregated) propagation; rare updates favour immediate
// propagation, whose freshness is then free (the paper's own rule of
// thumb in Section 3.3). Policy changes propagate through the object to
// every store.
#pragma once

#include <functional>

#include "globe/replication/store_engine.hpp"

namespace globe::replication {

struct AdaptiveOptions {
  /// Sampling interval.
  sim::SimDuration interval = sim::SimDuration::seconds(2);
  /// Writes per second above which propagation switches to lazy.
  double lazy_above_writes_per_s = 4.0;
  /// Writes per second below which propagation switches to immediate.
  double immediate_below_writes_per_s = 1.0;
  /// Aggregation period used when lazy.
  sim::SimDuration lazy_period = sim::SimDuration::millis(500);
  /// Write-counter source override; defaults to the primary store's
  /// writes_applied(). Lets deployments whose store can be re-created or
  /// snapshot-restored mid-run (counter regression) feed the controller
  /// — and lets tests drive exactly that.
  std::function<std::uint64_t()> writes_probe;
};

class AdaptiveController {
 public:
  AdaptiveController(sim::Simulator& sim, StoreEngine& primary,
                     AdaptiveOptions options = {})
      : primary_(primary),
        options_(options),
        timer_(sim, options.interval, [this] { sample(); }) {
    GLOBE_ASSERT_MSG(primary.config().is_primary,
                     "adaptive control attaches to the primary store");
  }

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] core::TransferInstant current_instant() const {
    return primary_.config().policy.instant;
  }

  /// Invoked after every decision; for tests and instrumentation.
  std::function<void(core::TransferInstant)> on_switch;

 private:
  void sample() {
    const std::uint64_t writes = options_.writes_probe
                                     ? options_.writes_probe()
                                     : primary_.writes_applied();
    // A counter regression (store re-created or snapshot-restored
    // between samples) would wrap the unsigned subtraction into a huge
    // rate and force a spurious switch to lazy. Treat a regression as
    // zero observed writes and re-baseline at the new counter value.
    const std::uint64_t delta = writes >= last_writes_ ? writes - last_writes_
                                                       : 0;
    const double interval_s = options_.interval.count_seconds();
    const double write_rate = static_cast<double>(delta) / interval_s;
    last_writes_ = writes;

    auto policy = primary_.config().policy;
    const auto before = policy.instant;
    if (write_rate >= options_.lazy_above_writes_per_s) {
      policy.instant = core::TransferInstant::kLazy;
      policy.lazy_period = options_.lazy_period;
    } else if (write_rate <= options_.immediate_below_writes_per_s) {
      policy.instant = core::TransferInstant::kImmediate;
    }
    if (policy.instant != before) {
      if (primary_.update_policy(policy)) {
        ++switches_;
        if (on_switch) on_switch(policy.instant);
      }
    }
  }

  StoreEngine& primary_;
  AdaptiveOptions options_;
  sim::PeriodicTimer timer_;
  std::uint64_t last_writes_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace globe::replication
