#include "globe/replication/write_log.hpp"

#include <algorithm>

#include "globe/util/assert.hpp"

namespace globe::replication {

namespace {

template <typename Index>
[[maybe_unused]] bool keyed_sorted(const Index& index) {
  return std::is_sorted(
      index.begin(), index.end(),
      [](const auto& a, const auto& b) { return a.key < b.key; });
}

}  // namespace

void WriteLog::append(const web::WriteRecord& rec) {
  const std::uint64_t pos = first_pos_ + entries_.size();
  entries_.push_back(rec);
  retained_bytes_ += record_bytes(rec);

  // Per-client index, kept sorted by seq. Records of one client almost
  // always arrive in seq order, so the common case is a push_back.
  auto& client_index = by_client_[rec.wid.client];
  const Keyed keyed{rec.wid.seq, pos};
  if (client_index.empty() || client_index.back().key <= rec.wid.seq) {
    client_index.push_back(keyed);
  } else {
    client_index.insert(
        std::upper_bound(client_index.begin(), client_index.end(), rec.wid.seq,
                         [](std::uint64_t s, const Keyed& k) {
                           return s < k.key;
                         }),
        keyed);
  }

  by_page_[rec.page].push_back(pos);

  if (rec.global_seq != 0) {
    const Keyed gkeyed{rec.global_seq, pos};
    if (by_gseq_.empty() || by_gseq_.back().key <= rec.global_seq) {
      by_gseq_.push_back(gkeyed);
    } else {
      by_gseq_.insert(
          std::upper_bound(by_gseq_.begin(), by_gseq_.end(), rec.global_seq,
                           [](std::uint64_t s, const Keyed& k) {
                             return s < k.key;
                           }),
          gkeyed);
    }
  }
  // Index coherence is load-bearing for every binary search below; the
  // checks are O(index) so they live behind GLOBE_DCHECK.
  GLOBE_DCHECK_MSG(keyed_sorted(client_index),
                   "per-client index lost its seq order");
  GLOBE_DCHECK_MSG(keyed_sorted(by_gseq_),
                   "global-sequence index lost its order");
}

void WriteLog::emit_sorted(std::vector<std::uint64_t>& positions,
                           std::vector<web::WriteRecord>& out) const {
  std::sort(positions.begin(), positions.end());
  out.reserve(out.size() + positions.size());
  for (const std::uint64_t pos : positions) out.push_back(at(pos));
}

std::vector<web::WriteRecord> WriteLog::records_since(
    const VectorClock& have, std::uint64_t have_gseq,
    const std::vector<std::string>& pages) const {
  std::vector<web::WriteRecord> out;
  std::vector<std::uint64_t> positions;

  if (!pages.empty()) {
    // Page-filtered fetch: walk only the requested pages' records.
    for (const std::string& page : pages) {
      auto it = by_page_.find(page);
      if (it == by_page_.end()) continue;
      for (const std::uint64_t pos : it->second) {
        const web::WriteRecord& rec = at(pos);
        if (have.covers(rec.wid)) continue;
        if (rec.global_seq != 0 && rec.global_seq <= have_gseq) continue;
        positions.push_back(pos);
      }
    }
    // A page listed twice must not emit its records twice.
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
    out.reserve(positions.size());
    for (const std::uint64_t pos : positions) out.push_back(at(pos));
    return out;
  }

  // Delta by vector clock: for each writing client, the records above
  // the requester's entry form a suffix of the seq-sorted index.
  for (const auto& [client, index] : by_client_) {
    const std::uint64_t floor = have.get(client);
    auto it = std::upper_bound(index.begin(), index.end(), floor,
                               [](std::uint64_t s, const Keyed& k) {
                                 return s < k.key;
                               });
    for (; it != index.end(); ++it) {
      const web::WriteRecord& rec = at(it->pos);
      if (rec.global_seq != 0 && rec.global_seq <= have_gseq) continue;
      positions.push_back(it->pos);
    }
  }
  emit_sorted(positions, out);
  return out;
}

std::vector<web::WriteRecord> WriteLog::records_since_naive(
    const VectorClock& have, std::uint64_t have_gseq,
    const std::vector<std::string>& pages) const {
  std::vector<web::WriteRecord> out;
  for (const auto& rec : entries_) {
    if (have.covers(rec.wid)) continue;
    if (rec.global_seq != 0 && rec.global_seq <= have_gseq) continue;
    if (!pages.empty() &&
        std::find(pages.begin(), pages.end(), rec.page) == pages.end()) {
      continue;
    }
    out.push_back(rec);
  }
  return out;
}

bool WriteLog::can_serve(const VectorClock& have, std::uint64_t have_gseq,
                         bool contiguous_gseq_floor) const {
  if (base_clock_.empty()) return true;  // nothing compacted yet
  if (have.dominates(base_clock_)) return true;
  // Sequential catch-up: every compacted record was totally ordered and
  // the requester's floor — contiguous under the sequential model — is
  // at or past the newest of them.
  return contiguous_gseq_floor && base_all_sequenced_ &&
         have_gseq >= base_gseq_;
}

void WriteLog::note_snapshot(const VectorClock& clock, std::uint64_t gseq,
                             bool sequenced) {
  base_clock_.merge(clock);
  if (gseq > base_gseq_) base_gseq_ = gseq;
  if (!sequenced) base_all_sequenced_ = false;
}

void WriteLog::compact_to_bytes(std::size_t budget) {
  if (retained_bytes_ <= budget) return;
  // Walk from the oldest record until the suffix fits the budget, then
  // reuse the count-based compaction for the fold itself.
  std::size_t bytes = retained_bytes_;
  std::size_t drop = 0;
  while (drop < entries_.size() && bytes > budget) {
    bytes -= record_bytes(entries_[drop]);
    ++drop;
  }
  compact(entries_.size() - drop);
}

std::size_t WriteLog::compact_below(const VectorClock& horizon,
                                    std::uint64_t gseq_horizon) {
  std::size_t drop = 0;
  while (drop < entries_.size()) {
    const web::WriteRecord& rec = entries_[drop];
    if (!horizon.covers(rec.wid)) break;
    if (rec.global_seq != 0 && rec.global_seq > gseq_horizon) break;
    ++drop;
  }
  if (drop == 0) return 0;
  compact(entries_.size() - drop);
  return drop;
}

void WriteLog::compact(std::size_t keep) {
  if (entries_.size() <= keep) return;
  const std::size_t drop = entries_.size() - keep;
  for (std::size_t i = 0; i < drop; ++i) {
    const web::WriteRecord& rec = entries_[i];
    base_clock_.observe(rec.wid);
    retained_bytes_ -= record_bytes(rec);
    if (rec.global_seq == 0) {
      base_all_sequenced_ = false;
    } else if (rec.global_seq > base_gseq_) {
      base_gseq_ = rec.global_seq;
    }
  }
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(drop));
  first_pos_ += drop;

  const std::uint64_t horizon = first_pos_;
  for (auto it = by_client_.begin(); it != by_client_.end();) {
    auto& index = it->second;
    std::erase_if(index, [horizon](const Keyed& k) { return k.pos < horizon; });
    it = index.empty() ? by_client_.erase(it) : std::next(it);
  }
  for (auto it = by_page_.begin(); it != by_page_.end();) {
    auto& index = it->second;
    index.erase(index.begin(),
                std::lower_bound(index.begin(), index.end(), horizon));
    it = index.empty() ? by_page_.erase(it) : std::next(it);
  }
  std::erase_if(by_gseq_,
                [horizon](const Keyed& k) { return k.pos < horizon; });
}

}  // namespace globe::replication
