// Orderers: the per-model admission logic of replication objects.
//
// "the internals of the replication objects differ as each implements
//  its own part of a coherence protocol" (Section 4.2). An Orderer
// decides, for each arriving write record, whether it can be applied
// now, must wait for earlier records (a gap), or is superseded and
// should be discarded. The store engine is model-agnostic: it feeds
// arriving records to its orderer and applies whatever comes back, in
// order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "globe/coherence/models.hpp"
#include "globe/coherence/vector_clock.hpp"
#include "globe/web/write_record.hpp"

namespace globe::replication {

using coherence::VectorClock;

/// Outcome classification for one offered record (mostly for metrics and
/// tests; applicable records are returned from admit()).
enum class Admission : std::uint8_t {
  kApplied,     // returned for application (possibly with drained buffer)
  kBuffered,    // waiting for earlier records
  kDuplicate,   // already seen / already applied
  kSuperseded,  // FIFO: older than the latest applied from that writer
};

class Orderer {
 public:
  virtual ~Orderer() = default;

  /// Offers one record. Appends every record that became applicable (in
  /// application order) to `ready`. Returns the classification of the
  /// offered record itself.
  virtual Admission admit(web::WriteRecord rec,
                          std::vector<web::WriteRecord>& ready) = 0;

  /// True if records are buffered waiting for missing predecessors.
  [[nodiscard]] virtual bool has_gaps() const = 0;

  /// Number of buffered (not yet applicable) records.
  [[nodiscard]] virtual std::size_t buffered() const = 0;

  /// Re-seeds the orderer after a full-state (snapshot) transfer: the
  /// replica is now at `clock`/`gseq`; buffered records covered by that
  /// state are dropped and newly applicable ones are drained to `ready`.
  virtual void reset_to(const VectorClock& clock, std::uint64_t gseq,
                        std::vector<web::WriteRecord>& ready) = 0;
};

/// PRAM: per-writer contiguous order. Buffers out-of-order records.
class PramOrderer final : public Orderer {
 public:
  Admission admit(web::WriteRecord rec,
                  std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] bool has_gaps() const override;
  [[nodiscard]] std::size_t buffered() const override;
  void reset_to(const VectorClock& clock, std::uint64_t gseq,
                std::vector<web::WriteRecord>& ready) override;

 private:
  void drain(ClientId client, std::vector<web::WriteRecord>& ready);

  std::map<ClientId, std::uint64_t> applied_;  // highest contiguous seq
  std::map<ClientId, std::map<std::uint64_t, web::WriteRecord>> pending_;
};

/// FIFO-PRAM: "a write request from a client is honored if it is more
/// recent than the latest write from that same client. Otherwise, the
/// request is simply ignored." Gaps are allowed; stale writes discarded.
class FifoOrderer final : public Orderer {
 public:
  Admission admit(web::WriteRecord rec,
                  std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] bool has_gaps() const override { return false; }
  [[nodiscard]] std::size_t buffered() const override { return 0; }
  void reset_to(const VectorClock& clock, std::uint64_t gseq,
                std::vector<web::WriteRecord>& ready) override;

 private:
  std::map<ClientId, std::uint64_t> latest_;
};

/// Sequential: records carry a primary-assigned global sequence number
/// and must be applied in exactly that order (contiguously).
class SequentialOrderer final : public Orderer {
 public:
  Admission admit(web::WriteRecord rec,
                  std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] bool has_gaps() const override { return !pending_.empty(); }
  [[nodiscard]] std::size_t buffered() const override {
    return pending_.size();
  }
  void reset_to(const VectorClock& clock, std::uint64_t gseq,
                std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] std::uint64_t applied_gseq() const { return applied_; }

 private:
  void drain(std::vector<web::WriteRecord>& ready);

  std::uint64_t applied_ = 0;
  std::map<std::uint64_t, web::WriteRecord> pending_;
};

/// Causal: a record is applicable once its dependency clock is covered
/// by the applied clock. Buffers otherwise.
class CausalOrderer final : public Orderer {
 public:
  Admission admit(web::WriteRecord rec,
                  std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] bool has_gaps() const override { return !pending_.empty(); }
  [[nodiscard]] std::size_t buffered() const override {
    return pending_.size();
  }
  void reset_to(const VectorClock& clock, std::uint64_t gseq,
                std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] const VectorClock& applied_clock() const { return applied_; }

 private:
  [[nodiscard]] bool applicable(const web::WriteRecord& rec) const;
  void drain(std::vector<web::WriteRecord>& ready);

  VectorClock applied_;
  std::vector<web::WriteRecord> pending_;
};

/// Eventual: every new record is immediately applicable (conflict
/// resolution happens at the document via last-writer-wins). Duplicate
/// suppression only.
class EventualOrderer final : public Orderer {
 public:
  Admission admit(web::WriteRecord rec,
                  std::vector<web::WriteRecord>& ready) override;
  [[nodiscard]] bool has_gaps() const override { return false; }
  [[nodiscard]] std::size_t buffered() const override { return 0; }
  void reset_to(const VectorClock& clock, std::uint64_t gseq,
                std::vector<web::WriteRecord>& ready) override;

 private:
  // A true set (not a vector clock): records may arrive out of order
  // across pages and every distinct record must still be applied once.
  std::unordered_set<coherence::WriteId> seen_;
};

/// Builds the orderer for an object-based model.
std::unique_ptr<Orderer> make_orderer(coherence::ObjectModel model);

}  // namespace globe::replication
