#include "globe/replication/testbed.hpp"

#include <algorithm>
#include <fstream>

#include "globe/check/monitor.hpp"
#include "globe/obs/export.hpp"
#include "globe/util/assert.hpp"

namespace globe::replication {

Testbed::Testbed(TestbedOptions options)
    : options_(options), sim_(), net_(sim_, options.seed) {
  net_.set_default_link(options_.wan);
  if (options_.windowed_multicast) {
    window_ = std::make_unique<net::WindowedMulticast>(options_.window);
  }
  const NodeId naming_node = add_node("naming");
  naming_ = std::make_unique<naming::NamingServer>(factory(naming_node), &sim_);
  service_nodes_.push_back(naming_node);
  if (options_.enable_membership) {
    const NodeId membership_node = add_node("membership");
    membership::MembershipOptions mo;
    mo.heartbeat_period = options_.membership_heartbeat;
    mo.failure_timeout = options_.failure_timeout;
    mo.naming = naming_.get();
    mo.metrics = &metrics_;
    membership_ = std::make_unique<membership::MembershipService>(
        factory(membership_node), &sim_, mo);
    service_nodes_.push_back(membership_node);
  }
  if (options_.shards > 0) {
    const NodeId placement_node = add_node("placement");
    placement_ = std::make_unique<placement::PlacementServer>(
        factory(placement_node), &sim_);
    placement::Layout layout;
    layout.epoch = 1;
    layout.shard_count = options_.shards;
    placement_->set_layout(layout);
    service_nodes_.push_back(placement_node);
  }
}

Testbed::~Testbed() {
  if (!obs_enabled_) return;
  // The tracer clock and trip observer are process-global and capture
  // this testbed; detach them before the members they reference die.
  gauge_timer_.reset();
  check::set_trip_observer(nullptr);
  obs::Tracer::instance().set_clock(nullptr);
  obs::Tracer::instance().disable();
}

void Testbed::enable_observability(ObservabilityOptions opts) {
  obs_opts_ = std::move(opts);
  obs_enabled_ = true;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_clock([this] { return sim_.now().count_micros(); });
  obs::TracerOptions to;
  to.capacity = obs_opts_.trace_capacity;
  to.sample_every = obs_opts_.sample_every;
  tracer.enable(to);

  recorder_ = std::make_unique<obs::FlightRecorder>(obs_opts_.gauge_ring);
  register_observability_gauges();
  gauge_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, obs_opts_.gauge_period,
      [this] { recorder_->sample(sim_.now().count_micros()); });
  gauge_timer_->start();

  check::set_trip_observer(
      [this](const check::TripReport& r) { on_monitor_trip(r.monitor); });
}

void Testbed::register_observability_gauges() {
  // Aggregates stay valid as stores join later (crashed stores keep
  // their engine object, so iterating stores_ is always safe).
  recorder_->register_gauge("stores.parked_total", [this] {
    double total = 0;
    for (const auto& s : stores_) total += s->parked_requests();
    return total;
  });
  recorder_->register_gauge("stores.log_bytes_total", [this] {
    double total = 0;
    for (const auto& s : stores_) {
      for (const ObjectId id : s->object_ids()) {
        total += static_cast<double>(s->write_log(id).retained_bytes());
      }
    }
    return total;
  });
  recorder_->register_gauge("checker.retained_events", [this] {
    return streaming_ != nullptr
               ? static_cast<double>(streaming_->retained_events())
               : 0.0;
  });
  recorder_->register_gauge("stores.view_epoch_max", [this] {
    double epoch = 0;
    for (const auto& s : stores_) {
      epoch = std::max(epoch, static_cast<double>(s->view_epoch()));
    }
    return epoch;
  });
  recorder_->register_gauge("stores.count", [this] {
    return static_cast<double>(stores_.size());
  });
  if (window_ != nullptr) {
    recorder_->register_gauge("window.credit_stalls", [this] {
      return static_cast<double>(window_->stats().credit_stalls);
    });
    recorder_->register_gauge("window.retransmits", [this] {
      return static_cast<double>(window_->stats().retransmits);
    });
    recorder_->register_gauge("window.dropped_payloads", [this] {
      return static_cast<double>(window_->stats().dropped_payloads);
    });
  }
  if (placement_ != nullptr) {
    recorder_->register_gauge("placement.version", [this] {
      return static_cast<double>(placement_->version());
    });
  }
  recorder_->register_gauge("metrics.stale_serves", [this] {
    return static_cast<double>(metrics_.stale_serves());
  });
  recorder_->register_gauge("metrics.staleness_seen", [this] {
    return static_cast<double>(metrics_.staleness_versions().count());
  });
  recorder_->register_gauge("metrics.flow_pauses", [this] {
    return static_cast<double>(metrics_.flow_pauses());
  });
}

void Testbed::on_monitor_trip(const std::string& monitor) {
  obs::annotate("trip:" + monitor);
  if (obs_opts_.trip_dump_path.empty()) return;
  // Dump the preceding window of spans + gauge rings next to the trip
  // report. Overwrite-on-trip: the last trip wins (each dump is a
  // complete, self-contained window).
  const std::int64_t since =
      sim_.now().count_micros() - obs_opts_.trip_dump_window.count_micros();
  std::ofstream out(obs_opts_.trip_dump_path);
  if (!out) return;
  obs::write_dump(out, obs::Tracer::instance().snapshot(since),
                  recorder_ != nullptr ? recorder_->snapshot(since)
                                       : std::vector<obs::GaugeSeries>{});
}

coherence::StreamingChecker& Testbed::enable_streaming(
    coherence::ObjectModel model, coherence::StreamingChecker::Options opts) {
  streaming_ = std::make_unique<coherence::StreamingChecker>(model, opts);
  for (const auto& c : clients_) {
    streaming_->add_session({c->id(), c->session_models()});
  }
  history_.attach_streaming(streaming_.get());
  return *streaming_;
}

obs::PropagationStats Testbed::harvest_propagation() {
  return obs::Tracer::instance().drain_propagation(
      &metrics_.propagation_first_us(), &metrics_.propagation_last_us());
}

NodeId Testbed::add_node(std::string name) {
  const NodeId node = net_.add_node(std::move(name));
  next_port_[node] = 1;
  return node;
}

core::TransportFactory Testbed::factory(NodeId node) {
  core::TransportFactory base = [this, node](net::MessageHandler handler)
      -> std::unique_ptr<net::Transport> {
    const PortId port = next_port_.at(node)++;
    return std::make_unique<net::SimTransport>(
        net_, net::Address{node, port}, std::move(handler));
  };
  if (window_ == nullptr) return base;
  // Windowed runtime: every endpoint's shared-datagram lane goes through
  // the one host; plain/background traffic passes straight through.
  net::TransportFactoryFn wrapped =
      net::windowed_factory(*window_, std::move(base));
  return [wrapped = std::move(wrapped)](net::MessageHandler handler) {
    return wrapped(std::move(handler));
  };
}

StoreEngine& Testbed::add_store_impl(StoreConfig cfg, std::string node_name) {
  cfg.log_compact_threshold = options_.log_compact_threshold;
  cfg.log_compact_bytes = options_.log_compact_bytes;
  cfg.naive_log_scan = options_.naive_log_scan;
  cfg.shared_fanout = options_.shared_fanout;
  cfg.shared_wire = options_.shared_wire;
  cfg.delta_snapshots = options_.delta_snapshots;
  if (membership_ != nullptr) {
    cfg.membership = membership_->address();
    cfg.membership_heartbeat = options_.membership_heartbeat;
  }
  cfg.flow = window_.get();  // null when not windowed
  const NodeId node = add_node(std::move(node_name));
  auto store = std::make_unique<StoreEngine>(
      factory(node), sim_, std::move(cfg),
      options_.record_history ? &history_ : nullptr, &metrics_);
  StoreEngine& ref = *store;
  stores_.push_back(std::move(store));
  return ref;
}

StoreEngine& Testbed::add_primary(ObjectId object,
                                  const core::ReplicationPolicy& policy,
                                  std::string node_name) {
  GLOBE_ASSERT_MSG(primaries_.find(object) == primaries_.end(),
                   "object already has a primary");
  StoreConfig cfg;
  cfg.object = object;
  cfg.store_id = next_store_id_++;
  cfg.store_class = naming::StoreClass::kPermanent;
  cfg.is_primary = true;
  cfg.policy = policy;
  StoreEngine& ref = add_store_impl(std::move(cfg), std::move(node_name));
  primaries_[object] = &ref;
  return ref;
}

StoreEngine& Testbed::add_store(ObjectId object,
                                naming::StoreClass store_class,
                                const core::ReplicationPolicy& policy,
                                net::Address upstream,
                                std::string node_name) {
  StoreConfig cfg;
  cfg.object = object;
  cfg.store_id = next_store_id_++;
  cfg.store_class = store_class;
  cfg.is_primary = false;
  cfg.upstream = upstream.valid() ? upstream : primary(object).address();
  cfg.policy = policy;
  if (node_name.empty()) {
    node_name = std::string(naming::to_string(store_class)) + "-" +
                std::to_string(cfg.store_id);
  }
  return add_store_impl(std::move(cfg), std::move(node_name));
}

StoreEngine& Testbed::add_baseline_cache(ObjectId object, CacheMode mode,
                                         sim::SimDuration ttl,
                                         const core::ReplicationPolicy& policy,
                                         net::Address upstream,
                                         std::string node_name) {
  GLOBE_ASSERT(mode != CacheMode::kGlobe);
  StoreConfig cfg;
  cfg.object = object;
  cfg.store_id = next_store_id_++;
  cfg.store_class = naming::StoreClass::kClientInitiated;
  cfg.is_primary = false;
  cfg.upstream = upstream.valid() ? upstream : primary(object).address();
  cfg.policy = policy;
  cfg.cache_mode = mode;
  cfg.ttl = ttl;
  if (node_name.empty()) {
    node_name = std::string(to_string(mode)) + "-" +
                std::to_string(cfg.store_id);
  }
  return add_store_impl(std::move(cfg), std::move(node_name));
}

ClientBinding& Testbed::add_client(ObjectId object,
                                   coherence::ClientModel session,
                                   net::Address read_store,
                                   net::Address write_store,
                                   std::string node_name) {
  if (node_name.empty()) {
    node_name = "client-" + std::to_string(next_client_id_);
  }
  const NodeId node = add_node(std::move(node_name));
  if (!read_store.valid()) read_store = primary(object).address();
  return add_client_at(node, object, session, read_store, write_store);
}

ClientBinding& Testbed::add_client_at(NodeId node, ObjectId object,
                                      coherence::ClientModel session,
                                      net::Address read_store,
                                      net::Address write_store) {
  BindOptions opts;
  opts.object = object;
  opts.client = next_client_id_++;
  opts.session = session;
  opts.read_store = read_store;
  opts.timeout = options_.client_timeout;
  opts.retries = options_.client_retries;
  opts.delta_snapshots = options_.delta_snapshots;
  if (membership_ != nullptr) {
    opts.membership = membership_->address();
    if (opts.timeout.count_micros() == 0) {
      // A membership-enabled deployment implies faults. Sessions
      // serialize their operations, so an UNTIMED request into a store
      // that crashes would wedge the whole session forever (queued ops
      // never drain, and a later rebind cannot unstick them) — default
      // to a generous timeout instead.
      opts.timeout = sim::SimDuration::seconds(1);
      opts.retries = std::max(opts.retries, 1);
    }
  }
  auto pit = primaries_.find(object);
  if (pit != primaries_.end()) {
    opts.object_model = pit->second->config().policy.model;
    const bool single_master =
        opts.object_model != coherence::ObjectModel::kCausal &&
        opts.object_model != coherence::ObjectModel::kEventual;
    opts.write_store = write_store.valid()
                           ? write_store
                           : (single_master ? pit->second->address()
                                            : read_store);
  } else if (write_store.valid()) {
    opts.write_store = write_store;
  }
  auto client = std::make_unique<ClientBinding>(
      factory(node), sim_, std::move(opts),
      options_.record_history ? &history_ : nullptr, &metrics_);
  ClientBinding& ref = *client;
  clients_.push_back(std::move(client));
  if (streaming_ != nullptr) {
    // Session specs must be registered before the client's first event.
    streaming_->add_session({ref.id(), ref.session_models()});
  }
  return ref;
}

StoreEngine& Testbed::add_shard_store(ShardId shard,
                                      naming::StoreClass store_class,
                                      const core::ReplicationPolicy& policy,
                                      bool primary, std::string node_name) {
  GLOBE_ASSERT_MSG(placement_ != nullptr,
                   "add_shard_store needs TestbedOptions::shards");
  GLOBE_ASSERT(shard < options_.shards);
  StoreConfig cfg;
  cfg.object = kShardAnchorBase + shard;
  cfg.store_id = next_store_id_++;
  cfg.store_class = primary ? naming::StoreClass::kPermanent : store_class;
  cfg.is_primary = primary;
  cfg.policy = policy;
  cfg.shard = shard;
  cfg.membership_scope = kShardMembershipScope;
  if (primary) {
    GLOBE_ASSERT_MSG(shard_primaries_.find(shard) == shard_primaries_.end(),
                     "shard already has a primary");
  } else {
    GLOBE_ASSERT_MSG(shard_primaries_.find(shard) != shard_primaries_.end(),
                     "add the shard's primary first");
    cfg.upstream = shard_primary(shard).address();
  }
  const ObjectId anchor = cfg.object;
  if (node_name.empty()) {
    node_name = "shard" + std::to_string(shard) + "-" +
                (primary ? std::string("primary")
                         : std::to_string(cfg.store_id));
  }
  StoreEngine& ref = add_store_impl(std::move(cfg), std::move(node_name));
  shard_stores_[shard].push_back(&ref);
  if (primary) {
    shard_primaries_[shard] = &ref;
    primaries_[anchor] = &ref;
  }
  placement_->register_contact(shard, ref.contact());
  return ref;
}

void Testbed::place_objects(const std::vector<ObjectId>& objects) {
  GLOBE_ASSERT_MSG(placement_ != nullptr,
                   "place_objects needs TestbedOptions::shards");
  for (const ObjectId object : objects) {
    const ShardId shard = placement_->layout().shard_of(object);
    auto sit = shard_stores_.find(shard);
    GLOBE_ASSERT_MSG(sit != shard_stores_.end(),
                     "object placed on a shard with no stores");
    StoreEngine* primary = shard_primaries_.at(shard);
    ObjectConfig oc;
    oc.object = object;
    oc.is_primary = true;
    oc.policy = primary->config().policy;
    primary->add_object(oc);
    primaries_[object] = primary;
    for (StoreEngine* s : sit->second) {
      if (s == primary) continue;
      ObjectConfig sc;
      sc.object = object;
      sc.upstream = primary->address();
      sc.policy = s->config().policy;
      sc.cache_mode = s->config().cache_mode;
      sc.ttl = s->config().ttl;
      s->add_object(sc);
    }
  }
}

ClientBinding& Testbed::add_placed_client(coherence::ClientModel session,
                                          coherence::ObjectModel object_model,
                                          std::string node_name) {
  GLOBE_ASSERT_MSG(placement_ != nullptr,
                   "add_placed_client needs TestbedOptions::shards");
  if (node_name.empty()) {
    node_name = "client-" + std::to_string(next_client_id_);
  }
  const NodeId node = add_node(std::move(node_name));
  BindOptions opts;
  opts.client = next_client_id_++;
  opts.session = session;
  opts.object_model = object_model;
  opts.placement = placement_->address();
  opts.timeout = options_.client_timeout;
  opts.retries = options_.client_retries;
  opts.delta_snapshots = options_.delta_snapshots;
  if (opts.timeout.count_micros() == 0) {
    // Placed clients exist to be churned: an untimed request into a
    // crashed store would wedge the session's serialized queues.
    opts.timeout = sim::SimDuration::seconds(1);
    opts.retries = std::max(opts.retries, 1);
  }
  // No History: per-object write sequences repeat WriteIds across
  // objects, which a shared recorder would conflate.
  auto client = std::make_unique<ClientBinding>(factory(node), sim_,
                                                std::move(opts), nullptr,
                                                &metrics_);
  ClientBinding& ref = *client;
  clients_.push_back(std::move(client));
  return ref;
}

void Testbed::flush_propagation() {
  for (auto& s : stores_) s->finalize_propagation();
}

void Testbed::settle() {
  sim_.run();
  // Repeated flush rounds drain propagation chains (primary -> mirror
  // -> cache) even in lazy/pull modes.
  for (int round = 0; round < 8; ++round) {
    flush_propagation();
    sim_.run();
  }
}

bool Testbed::converged(ObjectId object) const {
  auto pit = primaries_.find(object);
  if (pit == primaries_.end()) return false;
  const StoreEngine* primary = pit->second;
  for (const auto& s : stores_) {
    if (!s->has_object(object)) continue;
    if (s->config().cache_mode != CacheMode::kGlobe) continue;
    // Crashed and departed stores are out of the replica set; every
    // store still in it — including ones that joined or recovered mid-
    // run — must be bootstrapped and equal to the primary.
    if (!s->alive() || s->departed()) continue;
    if (!s->ready(object)) return false;
    if (!(s->document(object) == primary->document(object))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

void Testbed::crash_store(std::size_t index) {
  StoreEngine& s = *stores_.at(index);
  net_.set_node_down(s.address().node, true);
  s.crash();
}

void Testbed::recover_store(std::size_t index) {
  StoreEngine& s = *stores_.at(index);
  net_.set_node_down(s.address().node, false);
  s.recover();
}

void Testbed::leave_store(std::size_t index) { stores_.at(index)->leave(); }

std::vector<NodeId> Testbed::side_nodes(
    const std::vector<std::size_t>& side) const {
  std::vector<NodeId> nodes;
  for (const std::size_t index : side) {
    const StoreEngine& s = *stores_.at(index);
    nodes.push_back(s.address().node);
    // Clients are co-partitioned with the store they currently read
    // from: a real partition separates a site, not a single process.
    for (const auto& c : clients_) {
      if (c->read_store() == s.address()) {
        nodes.push_back(c->address().node);
      }
    }
  }
  return nodes;
}

void Testbed::partition_stores(const std::vector<std::size_t>& side_a,
                               const std::vector<std::size_t>& side_b) {
  const std::vector<NodeId> a = side_nodes(side_a);
  const std::vector<NodeId> b = side_nodes(side_b);
  const auto has_primary = [&](const std::vector<std::size_t>& side) {
    for (const std::size_t index : side) {
      if (stores_.at(index)->config().is_primary) return true;
    }
    return false;
  };
  // The well-known services stay reachable from the primary's side; the
  // other side loses them, so its stores miss heartbeats and get
  // evicted from the view until the heal re-admits them.
  const bool pa = has_primary(side_a);
  const bool pb = has_primary(side_b);
  if (pa && !pb) {
    net_.partition_groups(service_nodes_, b);
  } else if (pb && !pa) {
    net_.partition_groups(service_nodes_, a);
  }
  net_.partition_groups(a, b);
}

void Testbed::join_stores(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (spawner_) {
      spawner_(*this);
      continue;
    }
    // Default flash-crowd joiner: a Globe cache under the first
    // object's primary, inheriting the primary's policy.
    GLOBE_ASSERT_MSG(!primaries_.empty(), "join_stores needs a primary");
    const auto& [object, primary] = *primaries_.begin();
    add_store(object, naming::StoreClass::kClientInitiated,
              primary->config().policy);
  }
}

void Testbed::publish(ObjectId object, const std::string& name) {
  naming_->register_name(name, object);
  for (const auto& s : stores_) {
    if (s->has_object(object)) {
      naming_->register_contact(object, s->contact());
    }
  }
}

}  // namespace globe::replication
