#include "globe/replication/client_binding.hpp"

#include "globe/util/assert.hpp"

namespace globe::replication {

using coherence::ObjectModel;

ClientBinding::ClientBinding(const TransportFactory& factory,
                             sim::Simulator& sim, BindOptions options,
                             coherence::History* history,
                             metrics::MetricsSink* metrics)
    : sim_(sim),
      options_(std::move(options)),
      traffic_(metrics),
      comm_(factory, &sim, &traffic_),
      history_(history),
      metrics_(metrics) {
  GLOBE_ASSERT_MSG(options_.read_store.valid(), "bind requires a read store");
  if (!options_.write_store.valid()) {
    options_.write_store = options_.read_store;
  }
  if (options_.membership.valid()) {
    // Watch the object's replica view: the membership service pushes a
    // view change on every epoch — as a full view, or as a ViewDelta
    // diff applied onto the cached previous view — and the binding
    // re-resolves its stores when one of them leaves the view.
    comm_.set_delivery_handler(
        [this](const Address&, const msg::EnvelopeView& env) {
          if (env.type == msg::MsgType::kViewChange) {
            on_view_change(membership::ViewMsg::decode(env.body).view);
          } else if (env.type == msg::MsgType::kViewDelta) {
            on_view_delta(membership::ViewDelta::decode(env.body));
          }
        });
    announce_watch(/*subscribe=*/true);
  }
}

void ClientBinding::on_view_delta(const membership::ViewDelta& delta) {
  if (delta.object != options_.object || delta.epoch <= view_epoch_) return;
  membership::View next;
  if (delta.try_apply(view_, view_epoch_, &next)) {
    on_view_change(next);
    return;
  }
  // Epoch gap or no base yet (a watcher's first push is always a delta
  // it cannot apply): re-anchor on the full view.
  fetch_full_view();
}

void ClientBinding::fetch_full_view() {
  if (view_fetch_in_flight_) return;  // collapse gap-burst re-anchors
  view_fetch_in_flight_ = true;
  comm_.request_with(
      options_.membership, msg::MsgType::kViewFetchRequest, options_.object,
      [](util::Writer&) {},
      [this](bool ok, const Address&, const msg::EnvelopeView& env) {
        view_fetch_in_flight_ = false;
        if (!ok) return;
        on_view_change(membership::ViewMsg::decode(env.body).view);
      },
      sim::SimDuration::millis(250), /*retries=*/2);
}

ClientBinding::~ClientBinding() {
  // Best-effort: take this endpoint off the service's watcher list so
  // long-lived deployments do not broadcast views to dead clients.
  if (options_.membership.valid()) announce_watch(/*subscribe=*/false);
}

void ClientBinding::announce_watch(bool subscribe) {
  membership::WatchMsg watch;
  watch.watcher = comm_.local_address();
  watch.subscribe = subscribe;
  comm_.send_with(options_.membership, msg::MsgType::kMembershipWatch,
                  options_.object,
                  [&](util::Writer& w) { watch.encode(w); });
}

void ClientBinding::on_operation_failed() {
  // A timed-out operation is churn evidence. The watch registration is
  // a one-shot datagram, so a loss (or a service that was unreachable
  // at bind time) would otherwise silently disable rebinding forever —
  // re-announce it whenever the session observes a failure.
  if (options_.membership.valid()) announce_watch(/*subscribe=*/true);
}

void ClientBinding::on_view_change(const membership::View& view) {
  if (view.object != options_.object || view.epoch <= view_epoch_) return;
  view_epoch_ = view.epoch;
  view_ = view;  // the base the next ViewDelta diff applies onto
  if (view.members.empty()) return;
  const bool multi_master =
      options_.object_model == ObjectModel::kCausal ||
      options_.object_model == ObjectModel::kEventual;
  if (!view.contains(options_.read_store)) {
    // The store serving our reads is gone from the view: re-bind onto a
    // surviving store of the preferred layer. The session filter keeps
    // its state, so monotonic-reads / read-your-writes requirements
    // travel to the new store and park there until it catches up.
    const naming::ContactPoint* read = naming::choose_read_contact(
        view.members, options_.preferred_layer, options_.client);
    if (read != nullptr) {
      options_.read_store = read->address;
      ++rebinds_;
    }
  }
  if (!view.contains(options_.write_store)) {
    const naming::ContactPoint* write = naming::choose_write_contact(
        view.members, multi_master, view.find(options_.read_store));
    if (write != nullptr) {
      options_.write_store = write->address;
      ++rebinds_;
    } else if (multi_master) {
      options_.write_store = options_.read_store;
      ++rebinds_;
    }
  }
}

bool ClientBinding::wants(ClientModel m) const {
  if (!coherence::has(options_.session, m)) return false;
  return !coherence::subsumes(options_.object_model, m);
}

ClientRequest ClientBinding::base_request(msg::Invocation inv) {
  ClientRequest req;
  req.inv = std::move(inv);
  req.client = options_.client;
  req.client_op_index = ++op_index_;
  req.issued_at_us = sim_.now().count_micros();
  return req;
}

void ClientBinding::read(const std::string& page, ReadHandler cb) {
  if (options_.object_model == ObjectModel::kSequential &&
      pending_writes_ > 0) {
    // Program order: the read's floor must cover the in-flight writes;
    // defer it until their total-order positions are known.
    deferred_reads_.push_back(
        [this, page, cb = std::move(cb)]() mutable {
          read(page, std::move(cb));
        });
    return;
  }
  if (read_inflight_) {
    // A session is a serial construct: the monotonic-reads floor of the
    // NEXT read must include what this one observes, so overlapping
    // reads of one session would race their own guarantee. Reads queue
    // behind the in-flight read (writes serialize separately).
    queued_reads_.push_back([this, page, cb = std::move(cb)]() mutable {
      read(page, std::move(cb));
    });
    return;
  }
  read_inflight_ = true;
  ClientRequest req = base_request(msg::Invocation::get_page(page));

  // Session requirements the serving store must satisfy before replying.
  if (wants(ClientModel::kReadYourWrites) && write_seq_ > 0) {
    req.min_clock.advance(options_.client, write_seq_);
  }
  if (wants(ClientModel::kMonotonicReads)) {
    req.min_clock.merge(read_set_);
  }
  if (options_.object_model == ObjectModel::kSequential) {
    req.min_global_seq = max_gseq_seen_;
  }

  const util::SimTime issued = sim_.now();
  const std::uint64_t op_index = req.client_op_index;
  comm_.request_with(
      options_.read_store, msg::MsgType::kInvokeRequest, options_.object,
      [&](util::Writer& w) { req.encode(w); },
      [this, cb = std::move(cb), page, issued, op_index](
          bool ok, const Address&, const msg::EnvelopeView& env) {
        ReadResult res;
        res.issued_at = issued;
        res.completed_at = sim_.now();
        if (!ok) {
          res.error = "request timed out";
          on_operation_failed();
          cb(std::move(res));
          next_queued_read();
          return;
        }
        InvokeReply::View rep = InvokeReply::decode_view(env.body);
        res.ok = rep.ok;
        res.error = std::move(rep.error);
        res.store = rep.store;
        res.store_global_seq = rep.global_seq;
        res.store_clock = rep.store_clock;
        if (rep.ok) {
          util::Reader r{rep.value};
          core::PageReadValue v = core::PageReadValue::decode(r);
          res.content = std::move(v.content);
          res.mime = std::move(v.mime);
          res.writer = v.writer;
        }
        // Update session state from what this read observed.
        read_set_.merge(rep.store_clock);
        if (rep.global_seq > max_gseq_seen_) max_gseq_seen_ = rep.global_seq;

        if (history_ != nullptr) {
          coherence::ReadEvent e;
          e.at = res.completed_at;
          e.client_op_index = op_index;
          e.client = options_.client;
          e.store = rep.store;
          e.page = history_->intern(page);
          e.observed = res.writer;
          e.store_clock = rep.store_clock;
          e.store_global_seq = rep.global_seq;
          history_->record_read(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_->record_read_latency_us(
              static_cast<double>((res.completed_at - issued).count_micros()));
        }
        cb(std::move(res));
        next_queued_read();
      },
      options_.timeout, options_.retries);
}

void ClientBinding::next_queued_read() {
  read_inflight_ = false;
  if (queued_reads_.empty()) return;
  auto next = std::move(queued_reads_.front());
  queued_reads_.pop_front();
  next();
}

void ClientBinding::send_write(msg::Invocation inv, WriteHandler cb) {
  ClientRequest req = base_request(std::move(inv));
  req.wid = coherence::WriteId{options_.client, ++write_seq_};
  ++pending_writes_;

  // Dependencies the stores must order this write after.
  if (options_.object_model == ObjectModel::kCausal) {
    req.deps = read_set_;
    req.deps.advance(options_.client, write_seq_ - 1);
    req.deps.set(options_.client,
                 write_seq_ - 1);  // own previous write, exactly
  } else if (wants(ClientModel::kWritesFollowReads)) {
    req.deps = read_set_;
  }
  req.ordered = wants(ClientModel::kMonotonicWrites);

  // One write on the wire at a time. Timed-out requests retransmit, and
  // an old write's retransmission must never overtake a newer write of
  // the same session (it would invert the client's program order at the
  // accepting store); serializing the sends preserves per-writer order
  // through any combination of loss, retry, and partition.
  if (write_inflight_) {
    queued_writes_.push_back(
        [this, req = std::move(req), cb = std::move(cb)]() mutable {
          transmit_write(std::move(req), std::move(cb));
        });
    return;
  }
  write_inflight_ = true;
  transmit_write(std::move(req), std::move(cb));
}

void ClientBinding::transmit_write(ClientRequest req, WriteHandler cb) {
  const util::SimTime issued = util::SimTime(req.issued_at_us);
  const std::uint64_t op_index = req.client_op_index;
  const coherence::WriteId wid = req.wid;
  const coherence::VectorClock deps = req.deps;
  const std::string page = [&] {
    util::Reader r{util::BytesView(req.inv.args)};
    return r.str();
  }();

  comm_.request_with(
      options_.write_store, msg::MsgType::kInvokeRequest, options_.object,
      [&](util::Writer& w) { req.encode(w); },
      [this, cb = std::move(cb), issued, op_index, wid, deps, page](
          bool ok, const Address&, const msg::EnvelopeView& env) {
        WriteResult res;
        res.issued_at = issued;
        res.completed_at = sim_.now();
        res.wid = wid;
        --pending_writes_;
        if (!ok) {
          res.error = "request timed out";
          on_operation_failed();
          cb(std::move(res));
          next_queued_write();
          flush_deferred_reads();
          return;
        }
        InvokeReply::View rep = InvokeReply::decode_view(env.body);
        res.ok = rep.ok;
        res.error = std::move(rep.error);
        res.global_seq = rep.global_seq;
        res.store = rep.store;
        if (rep.global_seq > max_gseq_seen_) max_gseq_seen_ = rep.global_seq;
        // A client sees its own writes: fold them into the read set used
        // for causal dependencies of later operations.
        read_set_.observe(wid);

        if (history_ != nullptr) {
          coherence::WriteEvent e;
          e.at = res.completed_at;
          e.client_op_index = op_index;
          e.client = options_.client;
          e.via_store = rep.store;
          e.wid = wid;
          e.page = history_->intern(page);
          e.deps = deps;
          e.global_seq = rep.global_seq;
          history_->record_write(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_->record_write_latency_us(
              static_cast<double>((res.completed_at - issued).count_micros()));
        }
        cb(std::move(res));
        next_queued_write();
        flush_deferred_reads();
      },
      options_.timeout, options_.retries);
}

void ClientBinding::next_queued_write() {
  if (queued_writes_.empty()) {
    write_inflight_ = false;
    return;
  }
  auto next = std::move(queued_writes_.front());
  queued_writes_.pop_front();
  next();
}

void ClientBinding::flush_deferred_reads() {
  if (pending_writes_ > 0 || deferred_reads_.empty()) return;
  auto pending = std::move(deferred_reads_);
  deferred_reads_.clear();
  for (auto& fn : pending) fn();
}

void ClientBinding::write(const std::string& page, const std::string& content,
                          WriteHandler cb, const std::string& mime) {
  send_write(msg::Invocation::put_page(page, content, mime), std::move(cb));
}

void ClientBinding::remove(const std::string& page, WriteHandler cb) {
  send_write(msg::Invocation::delete_page(page), std::move(cb));
}

void ClientBinding::get_document(DocumentHandler cb) {
  if (options_.delta_snapshots) {
    get_document_delta(std::move(cb));
    return;
  }
  ClientRequest req = base_request(msg::Invocation::get_document());
  comm_.request_with(options_.read_store, msg::MsgType::kInvokeRequest,
                options_.object,
                [&](util::Writer& w) { req.encode(w); },
                [this, cb = std::move(cb)](bool ok, const Address&,
                                           const msg::EnvelopeView& env) {
                  DocumentResult res;
                  if (!ok) {
                    res.error = "request timed out";
                    cb(std::move(res));
                    return;
                  }
                  InvokeReply::View rep =
                      InvokeReply::decode_view(env.body);
                  res.ok = rep.ok;
                  res.error = std::move(rep.error);
                  res.store = rep.store;
                  if (rep.ok) {
                    res.document.restore(rep.value);
                  }
                  read_set_.merge(rep.store_clock);
                  cb(std::move(res));
                },
                options_.timeout, options_.retries);
}

void ClientBinding::get_document_delta(DocumentHandler cb) {
  // Fetch-miss restore through the delta-snapshot path: ship the cached
  // document's page summary (or a bare floor while the cache mirrors the
  // bound store's lineage) and receive only the pages that changed.
  SnapshotDeltaRequest req;
  if (doc_source_ != kInvalidStore &&
      doc_source_addr_ == options_.read_store) {
    // The cache is only ever mutated by these transfers, so while the
    // binding is unchanged the last version is an exact floor.
    req.mode = SnapshotDeltaRequest::Mode::kFloor;
    req.floor_source = doc_source_;
    req.floor_version = doc_source_version_;
  } else {
    req.mode = SnapshotDeltaRequest::Mode::kSummary;
    req.have = doc_cache_.summarize();
  }
  comm_.request_with(
      options_.read_store, msg::MsgType::kSnapshotDeltaRequest,
      options_.object, [&](util::Writer& w) { req.encode(w); },
      [this, cb = std::move(cb)](bool ok, const Address&,
                                 const msg::EnvelopeView& env) {
        DocumentResult res;
        if (!ok) {
          res.error = "request timed out";
          on_operation_failed();
          cb(std::move(res));
          return;
        }
        StateTransfer::View st = StateTransfer::decode_view(env.body);
        if (st.full) {
          doc_cache_.restore(st.snapshot);
        } else {
          doc_cache_.apply_delta(st.delta);
        }
        doc_source_ = st.source;
        doc_source_addr_ = options_.read_store;
        doc_source_version_ = st.version;
        read_set_.merge(st.clock);
        res.ok = true;
        res.store = st.source;
        res.document = doc_cache_;
        cb(std::move(res));
      },
      options_.timeout, options_.retries);
}

}  // namespace globe::replication
