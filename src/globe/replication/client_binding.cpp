#include "globe/replication/client_binding.hpp"

#include "globe/check/monitor.hpp"
#include "globe/obs/trace.hpp"
#include "globe/util/assert.hpp"

namespace globe::replication {

using coherence::ObjectModel;

ClientBinding::ClientBinding(const TransportFactory& factory,
                             sim::Simulator& sim, BindOptions options,
                             coherence::History* history,
                             metrics::MetricsSink* metrics)
    : sim_(sim),
      options_(std::move(options)),
      traffic_(metrics),
      comm_(factory, &sim, &traffic_),
      history_(history),
      metrics_(metrics) {
  GLOBE_ASSERT_MSG(options_.read_store.valid() || options_.placement.valid(),
                   "bind requires a read store or a placement server");
  if (!options_.write_store.valid()) {
    options_.write_store = options_.read_store;
  }
  // Seed the default session from the static addresses (possibly
  // invalid; placement resolution then fills them on first use).
  Session& def = session(options_.object);
  def.read_store = options_.read_store;
  def.write_store = options_.write_store;
  if (options_.placement.valid()) {
    placement_ = std::make_unique<placement::PlacementCache>(
        factory, &sim, options_.placement);
    placement_->start();
  }
  if (options_.membership.valid()) {
    // Watch the object's replica view: the membership service pushes a
    // view change on every epoch — as a full view, or as a ViewDelta
    // diff applied onto the cached previous view — and the binding
    // re-resolves its stores when one of them leaves the view.
    comm_.set_delivery_handler(
        [this](const Address&, const msg::EnvelopeView& env) {
          if (env.type == msg::MsgType::kViewChange) {
            on_view_change(membership::ViewMsg::decode(env.body).view);
          } else if (env.type == msg::MsgType::kViewDelta) {
            on_view_delta(membership::ViewDelta::decode(env.body));
          }
        });
    announce_watch(/*subscribe=*/true);
  }
}

ClientBinding::Session& ClientBinding::session(ObjectId object) {
  auto it = sessions_.find(object);
  if (it == sessions_.end()) {
    auto s = std::make_unique<Session>();
    s->object = object;
    it = sessions_.emplace(object, std::move(s)).first;
  }
  return *it->second;
}

Address ClientBinding::session_or_options_read() const {
  auto it = sessions_.find(options_.object);
  return it == sessions_.end() ? options_.read_store
                               : it->second->read_store;
}

Address ClientBinding::session_or_options_write() const {
  auto it = sessions_.find(options_.object);
  return it == sessions_.end() ? options_.write_store
                               : it->second->write_store;
}

const coherence::VectorClock& ClientBinding::read_set() const {
  static const coherence::VectorClock kEmpty;
  auto it = sessions_.find(options_.object);
  return it == sessions_.end() ? kEmpty : it->second->read_set;
}

std::uint64_t ClientBinding::writes_issued() const {
  auto it = sessions_.find(options_.object);
  return it == sessions_.end() ? 0 : it->second->write_seq;
}

const web::WebDocument& ClientBinding::document_cache() const {
  static const web::WebDocument kEmpty;
  auto it = sessions_.find(options_.object);
  return it == sessions_.end() ? kEmpty : it->second->doc_cache;
}

void ClientBinding::bind_object(ObjectId object, const Address& read_store,
                                const Address& write_store) {
  Session& s = session(object);
  s.read_store = read_store;
  s.write_store = write_store.valid() ? write_store : read_store;
  // A static binding wins over placement resolution until invalidated.
  s.resolved_version = placement_ != nullptr ? placement_->version() : 0;
}

void ClientBinding::resolve(Session& s, std::function<void()> then) {
  if (placement_ == nullptr) {
    then();
    return;
  }
  if (s.read_store.valid() && placement_->fresh() &&
      s.resolved_version == placement_->version()) {
    then();
    return;
  }
  placement_->ensure([this, &s, then = std::move(then)](bool ok) {
    if (ok) apply_resolution(s);
    then();
  });
}

void ClientBinding::apply_resolution(Session& s) {
  const auto res = placement_->resolve(s.object);
  if (!res.has_value() || res->contacts.empty()) return;
  s.resolved_version = res->version;
  const naming::ContactPoint* read = naming::choose_read_contact(
      res->contacts, options_.preferred_layer,
      naming::contact_spread(s.object, options_.client));
  const naming::ContactPoint* write =
      naming::choose_write_contact(res->contacts, multi_master(), read);
  const Address old_read = s.read_store;
  const Address old_write = s.write_store;
  if (read != nullptr) s.read_store = read->address;
  if (write != nullptr) s.write_store = write->address;
  if (old_read.valid() &&
      (s.read_store != old_read || s.write_store != old_write)) {
    // A layout-epoch (or contact-table) change moved this session onto
    // different stores; the session filter keeps its state, so the
    // guarantees travel to the new store and park there until it
    // catches up.
    ++rebinds_;
    if (metrics_ != nullptr) metrics_->record_shard_rebind(res->shard);
  }
}

void ClientBinding::on_view_delta(const membership::ViewDelta& delta) {
  if (delta.object != options_.object || delta.epoch <= view_epoch_) return;
  membership::View next;
  if (delta.try_apply(view_, view_epoch_, &next)) {
    on_view_change(next);
    return;
  }
  // Epoch gap or no base yet (a watcher's first push is always a delta
  // it cannot apply): re-anchor on the full view.
  fetch_full_view();
}

void ClientBinding::fetch_full_view() {
  if (view_fetch_in_flight_) return;  // collapse gap-burst re-anchors
  view_fetch_in_flight_ = true;
  comm_.request_with(
      options_.membership, msg::MsgType::kViewFetchRequest, options_.object,
      [](util::Writer&) {},
      [this](bool ok, const Address&, const msg::EnvelopeView& env) {
        view_fetch_in_flight_ = false;
        if (!ok) return;
        on_view_change(membership::ViewMsg::decode(env.body).view);
      },
      sim::SimDuration::millis(250), /*retries=*/2);
}

ClientBinding::~ClientBinding() {
  // Best-effort: take this endpoint off the service's watcher list so
  // long-lived deployments do not broadcast views to dead clients.
  if (options_.membership.valid()) announce_watch(/*subscribe=*/false);
  for (auto& [id, s] : sessions_) check::release(s.get());
  check::release(this);
}

void ClientBinding::announce_watch(bool subscribe) {
  membership::WatchMsg watch;
  watch.watcher = comm_.local_address();
  watch.subscribe = subscribe;
  comm_.send_with(options_.membership, msg::MsgType::kMembershipWatch,
                  options_.object,
                  [&](util::Writer& w) { watch.encode(w); });
}

void ClientBinding::on_operation_failed(Session& s) {
  // A timed-out operation is churn evidence. The watch registration is
  // a one-shot datagram, so a loss (or a service that was unreachable
  // at bind time) would otherwise silently disable rebinding forever —
  // re-announce it whenever the session observes a failure.
  if (options_.membership.valid()) announce_watch(/*subscribe=*/true);
  // A placement-routed session re-resolves on its next operation: the
  // shard's contacts may have moved under us.
  if (placement_ != nullptr) s.resolved_version = 0;
}

void ClientBinding::on_view_change(const membership::View& view) {
  if (view.object != options_.object || view.epoch <= view_epoch_) return;
  view_epoch_ = view.epoch;
  GLOBE_CHECK_HOOK(
      on_view_adopt(this, "client", options_.client, view.epoch));
  view_ = view;  // the base the next ViewDelta diff applies onto
  if (view.members.empty()) return;
  Session& s = default_session();
  if (!view.contains(s.read_store)) {
    // The store serving our reads is gone from the view: re-bind onto a
    // surviving store of the preferred layer. The session filter keeps
    // its state, so monotonic-reads / read-your-writes requirements
    // travel to the new store and park there until it catches up.
    const naming::ContactPoint* read = naming::choose_read_contact(
        view.members, options_.preferred_layer,
        naming::contact_spread(options_.object, options_.client));
    if (read != nullptr) {
      s.read_store = read->address;
      options_.read_store = read->address;
      ++rebinds_;
    }
  }
  if (!view.contains(s.write_store)) {
    const naming::ContactPoint* write = naming::choose_write_contact(
        view.members, multi_master(), view.find(s.read_store));
    if (write != nullptr) {
      s.write_store = write->address;
      options_.write_store = write->address;
      ++rebinds_;
    } else if (multi_master()) {
      s.write_store = s.read_store;
      options_.write_store = s.read_store;
      ++rebinds_;
    }
  }
}

bool ClientBinding::wants(ClientModel m) const {
  if (!coherence::has(options_.session, m)) return false;
  return !coherence::subsumes(options_.object_model, m);
}

ClientRequest ClientBinding::base_request(Session& s, msg::Invocation inv) {
  (void)s;
  ClientRequest req;
  req.inv = std::move(inv);
  req.client = options_.client;
  req.client_op_index = ++op_index_;
  req.issued_at_us = sim_.now().count_micros();
  return req;
}

void ClientBinding::read(ObjectId object, const std::string& page,
                         ReadHandler cb) {
  Session& s = session(object);
  resolve(s, [this, &s, page, cb = std::move(cb)]() mutable {
    read_impl(s, page, std::move(cb));
  });
}

void ClientBinding::read_impl(Session& s, const std::string& page,
                              ReadHandler cb) {
  if (options_.object_model == ObjectModel::kSequential &&
      s.pending_writes > 0) {
    // Program order: the read's floor must cover the in-flight writes;
    // defer it until their total-order positions are known.
    s.deferred_reads.push_back(
        [this, &s, page, cb = std::move(cb)]() mutable {
          read_impl(s, page, std::move(cb));
        });
    return;
  }
  if (s.read_inflight) {
    // A session is a serial construct: the monotonic-reads floor of the
    // NEXT read must include what this one observes, so overlapping
    // reads of one session would race their own guarantee. Reads queue
    // behind the in-flight read (writes serialize separately).
    s.queued_reads.push_back([this, &s, page, cb = std::move(cb)]() mutable {
      read_impl(s, page, std::move(cb));
    });
    return;
  }
  s.read_inflight = true;
  ClientRequest req = base_request(s, msg::Invocation::get_page(page));

  // Session requirements the serving store must satisfy before replying.
  if (wants(ClientModel::kReadYourWrites) && s.write_seq > 0) {
    req.min_clock.advance(options_.client, s.write_seq);
  }
  if (wants(ClientModel::kMonotonicReads)) {
    req.min_clock.merge(s.read_set);
  }
  if (options_.object_model == ObjectModel::kSequential) {
    req.min_global_seq = s.max_gseq_seen;
  }

  const util::SimTime issued = sim_.now();
  const std::uint64_t op_index = req.client_op_index;
  comm_.request_with(
      s.read_store, msg::MsgType::kInvokeRequest, s.object,
      [&](util::Writer& w) { req.encode(w); },
      [this, &s, cb = std::move(cb), page, issued, op_index](
          bool ok, const Address&, const msg::EnvelopeView& env) {
        ReadResult res;
        res.issued_at = issued;
        res.completed_at = sim_.now();
        if (!ok) {
          res.error = "request timed out";
          on_operation_failed(s);
          cb(std::move(res));
          next_queued_read(s);
          return;
        }
        InvokeReply::View rep = InvokeReply::decode_view(env.body);
        res.ok = rep.ok;
        res.error = std::move(rep.error);
        res.store = rep.store;
        res.store_global_seq = rep.global_seq;
        res.store_clock = rep.store_clock;
        if (!rep.ok && res.error == "unknown object" &&
            placement_ != nullptr) {
          // The store no longer hosts this object (rebalance moved it):
          // drop the resolution so the next operation re-resolves
          // through a fresh layout.
          placement_->invalidate();
          s.resolved_version = 0;
        }
        if (rep.ok) {
          util::Reader r{rep.value};
          core::PageReadValue v = core::PageReadValue::decode(r);
          res.content = std::move(v.content);
          res.mime = std::move(v.mime);
          res.writer = v.writer;
        }
        // Update session state from what this read observed.
        s.read_set.merge(rep.store_clock);
        if (rep.global_seq > s.max_gseq_seen) s.max_gseq_seen = rep.global_seq;
        GLOBE_CHECK_HOOK(on_session_floors(&s, options_.client, s.object,
                                           s.write_seq, s.read_set.total(),
                                           s.max_gseq_seen));

        if (history_ != nullptr) {
          coherence::ReadEvent e;
          e.at = res.completed_at;
          e.client_op_index = op_index;
          e.client = options_.client;
          e.store = rep.store;
          e.page = history_->intern(page);
          e.observed = res.writer;
          e.store_clock = rep.store_clock;
          e.store_global_seq = rep.global_seq;
          history_->record_read(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_->record_read_latency_us(
              static_cast<double>((res.completed_at - issued).count_micros()));
        }
        cb(std::move(res));
        next_queued_read(s);
      },
      options_.timeout, options_.retries);
}

void ClientBinding::next_queued_read(Session& s) {
  s.read_inflight = false;
  if (s.queued_reads.empty()) return;
  auto next = std::move(s.queued_reads.front());
  s.queued_reads.pop_front();
  next();
}

void ClientBinding::send_write(Session& s, msg::Invocation inv,
                               WriteHandler cb) {
  ClientRequest req = base_request(s, std::move(inv));
  req.wid = coherence::WriteId{options_.client, ++s.write_seq};
  ++s.pending_writes;

  // Dependencies the stores must order this write after.
  if (options_.object_model == ObjectModel::kCausal) {
    req.deps = s.read_set;
    req.deps.advance(options_.client, s.write_seq - 1);
    req.deps.set(options_.client,
                 s.write_seq - 1);  // own previous write, exactly
  } else if (wants(ClientModel::kWritesFollowReads)) {
    req.deps = s.read_set;
  }
  req.ordered = wants(ClientModel::kMonotonicWrites);

  // One write on the wire at a time. Timed-out requests retransmit, and
  // an old write's retransmission must never overtake a newer write of
  // the same session (it would invert the client's program order at the
  // accepting store); serializing the sends preserves per-writer order
  // through any combination of loss, retry, and partition.
  if (s.write_inflight) {
    s.queued_writes.push_back(
        [this, &s, req = std::move(req), cb = std::move(cb)]() mutable {
          transmit_write(s, std::move(req), std::move(cb));
        });
    return;
  }
  s.write_inflight = true;
  transmit_write(s, std::move(req), std::move(cb));
}

void ClientBinding::transmit_write(Session& s, ClientRequest req,
                                   WriteHandler cb) {
  const util::SimTime issued = util::SimTime(req.issued_at_us);
  const std::uint64_t op_index = req.client_op_index;
  const coherence::WriteId wid = req.wid;
  const coherence::VectorClock deps = req.deps;
  const std::string page = [&] {
    util::Reader r{util::BytesView(req.inv.args)};
    return r.str();
  }();

  // Trace root: the client.write span. Its context rides the request
  // envelope (the store's wire.deliver/accept spans chain to it); the
  // span itself is emitted at completion, when the duration is known.
  obs::TraceContext trace_ctx;
  std::int64_t trace_start_us = 0;
  {
    obs::Tracer& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      const std::uint64_t trace = obs::trace_of(options_.client, wid.seq);
      if (tracer.sampled(trace)) {
        trace_ctx = obs::TraceContext{trace, tracer.new_span_id()};
        trace_start_us = tracer.now_us();
      }
    }
  }
  const obs::ContextScope trace_scope(trace_ctx);

  comm_.request_with(
      s.write_store, msg::MsgType::kInvokeRequest, s.object,
      [&](util::Writer& w) { req.encode(w); },
      [this, &s, cb = std::move(cb), issued, op_index, wid, deps, page,
       trace_ctx, trace_start_us](bool ok, const Address&,
                                  const msg::EnvelopeView& env) {
        WriteResult res;
        res.issued_at = issued;
        res.completed_at = sim_.now();
        res.wid = wid;
        --s.pending_writes;
        if (trace_ctx.valid() && obs::tracing_enabled()) {
          obs::Tracer& tracer = obs::Tracer::instance();
          const std::int64_t end_us = tracer.now_us();
          obs::Span root;
          root.kind = obs::SpanKind::kClientWrite;
          root.trace_id = trace_ctx.trace_id;
          root.span_id = trace_ctx.span_id;
          root.ts_us = trace_start_us;
          root.dur_us = end_us - trace_start_us;
          root.actor = options_.client;
          root.object = s.object;
          if (!ok) root.set_label("timeout");
          tracer.emit(root);
          if (ok) {
            // Instant ack span, parented to the reply's wire.deliver
            // span (the comm layer installed it around this callback).
            obs::Span ack;
            ack.kind = obs::SpanKind::kAck;
            ack.trace_id = trace_ctx.trace_id;
            const obs::TraceContext cur = obs::current_context();
            ack.parent_id = cur.trace_id == trace_ctx.trace_id
                                ? cur.span_id
                                : trace_ctx.span_id;
            ack.ts_us = end_us;
            ack.actor = options_.client;
            ack.object = s.object;
            tracer.emit(ack);
          }
        }
        if (!ok) {
          res.error = "request timed out";
          on_operation_failed(s);
          cb(std::move(res));
          next_queued_write(s);
          flush_deferred_reads(s);
          return;
        }
        InvokeReply::View rep = InvokeReply::decode_view(env.body);
        res.ok = rep.ok;
        res.error = std::move(rep.error);
        res.global_seq = rep.global_seq;
        res.store = rep.store;
        if (!rep.ok && res.error == "unknown object" &&
            placement_ != nullptr) {
          placement_->invalidate();
          s.resolved_version = 0;
        }
        if (rep.global_seq > s.max_gseq_seen) s.max_gseq_seen = rep.global_seq;
        // A client sees its own writes: fold them into the read set used
        // for causal dependencies of later operations.
        s.read_set.observe(wid);
        GLOBE_CHECK_HOOK(on_session_floors(&s, options_.client, s.object,
                                           s.write_seq, s.read_set.total(),
                                           s.max_gseq_seen));

        if (history_ != nullptr) {
          coherence::WriteEvent e;
          e.at = res.completed_at;
          e.client_op_index = op_index;
          e.client = options_.client;
          e.via_store = rep.store;
          e.wid = wid;
          e.page = history_->intern(page);
          e.deps = deps;
          e.global_seq = rep.global_seq;
          history_->record_write(std::move(e));
        }
        if (metrics_ != nullptr) {
          metrics_->record_write_latency_us(
              static_cast<double>((res.completed_at - issued).count_micros()));
        }
        cb(std::move(res));
        next_queued_write(s);
        flush_deferred_reads(s);
      },
      options_.timeout, options_.retries);
}

void ClientBinding::next_queued_write(Session& s) {
  if (s.queued_writes.empty()) {
    s.write_inflight = false;
    return;
  }
  auto next = std::move(s.queued_writes.front());
  s.queued_writes.pop_front();
  next();
}

void ClientBinding::flush_deferred_reads(Session& s) {
  if (s.pending_writes > 0 || s.deferred_reads.empty()) return;
  auto pending = std::move(s.deferred_reads);
  s.deferred_reads.clear();
  for (auto& fn : pending) fn();
}

void ClientBinding::write(ObjectId object, const std::string& page,
                          const std::string& content, WriteHandler cb,
                          const std::string& mime) {
  Session& s = session(object);
  resolve(s, [this, &s, page, content, mime, cb = std::move(cb)]() mutable {
    send_write(s, msg::Invocation::put_page(page, content, mime),
               std::move(cb));
  });
}

void ClientBinding::remove(ObjectId object, const std::string& page,
                           WriteHandler cb) {
  Session& s = session(object);
  resolve(s, [this, &s, page, cb = std::move(cb)]() mutable {
    send_write(s, msg::Invocation::delete_page(page), std::move(cb));
  });
}

void ClientBinding::get_document(ObjectId object, DocumentHandler cb) {
  Session& s = session(object);
  resolve(s, [this, &s, cb = std::move(cb)]() mutable {
    if (options_.delta_snapshots) {
      get_document_delta(s, std::move(cb));
      return;
    }
    ClientRequest req = base_request(s, msg::Invocation::get_document());
    comm_.request_with(s.read_store, msg::MsgType::kInvokeRequest, s.object,
                       [&](util::Writer& w) { req.encode(w); },
                       [this, &s, cb = std::move(cb)](
                           bool ok, const Address&,
                           const msg::EnvelopeView& env) {
                         DocumentResult res;
                         if (!ok) {
                           res.error = "request timed out";
                           cb(std::move(res));
                           return;
                         }
                         InvokeReply::View rep =
                             InvokeReply::decode_view(env.body);
                         res.ok = rep.ok;
                         res.error = std::move(rep.error);
                         res.store = rep.store;
                         if (rep.ok) {
                           res.document.restore(rep.value);
                         }
                         s.read_set.merge(rep.store_clock);
                         cb(std::move(res));
                       },
                       options_.timeout, options_.retries);
  });
}

void ClientBinding::get_document_delta(Session& s, DocumentHandler cb) {
  // Fetch-miss restore through the delta-snapshot path: ship the cached
  // document's page summary (or a bare floor while the cache mirrors the
  // bound store's lineage) and receive only the pages that changed.
  SnapshotDeltaRequest req;
  if (s.doc_source != kInvalidStore && s.doc_source_addr == s.read_store) {
    // The cache is only ever mutated by these transfers, so while the
    // binding is unchanged the last version is an exact floor.
    req.mode = SnapshotDeltaRequest::Mode::kFloor;
    req.floor_source = s.doc_source;
    req.floor_version = s.doc_source_version;
  } else {
    req.mode = SnapshotDeltaRequest::Mode::kSummary;
    req.have = s.doc_cache.summarize();
  }
  comm_.request_with(
      s.read_store, msg::MsgType::kSnapshotDeltaRequest, s.object,
      [&](util::Writer& w) { req.encode(w); },
      [this, &s, cb = std::move(cb)](bool ok, const Address&,
                                     const msg::EnvelopeView& env) {
        DocumentResult res;
        if (!ok) {
          res.error = "request timed out";
          on_operation_failed(s);
          cb(std::move(res));
          return;
        }
        StateTransfer::View st = StateTransfer::decode_view(env.body);
        if (st.full) {
          s.doc_cache.restore(st.snapshot);
        } else {
          s.doc_cache.apply_delta(st.delta);
        }
        s.doc_source = st.source;
        s.doc_source_addr = s.read_store;
        s.doc_source_version = st.version;
        s.read_set.merge(st.clock);
        res.ok = true;
        res.store = st.source;
        res.document = s.doc_cache;
        cb(std::move(res));
      },
      options_.timeout, options_.retries);
}

}  // namespace globe::replication
