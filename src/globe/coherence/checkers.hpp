// Coherence checkers.
//
// Each checker takes a recorded History and verifies one coherence model
// from the paper. They return a CheckResult listing every violation found
// (not just the first), which makes property-test failures diagnosable.
//
// Object-based models (Section 3.2.1):
//   check_pram        — per-writer order, contiguous, at every store
//   check_fifo_pram   — per-writer order, gaps allowed (stale discarded)
//   check_causal      — store apply order is a linear extension of the
//                       dependency (vector-clock) order
//   check_sequential  — all stores apply one total order; client reads
//                       respect that order and their own program order
//   check_eventual_delivery — every store eventually applied every write
//                       that any store applied (quiescent delivery)
//
// Client-based models (Section 3.2.2), verified per flagged client:
//   check_monotonic_writes, check_read_your_writes,
//   check_monotonic_reads, check_writes_follow_reads
//
// Scale: `check_sessions` verifies every client's guarantees in ONE
// sweep over the history — O(applies + client ops) total instead of the
// seed's O(clients × events) (each per-client checker rescanned every
// store's full apply log). `check_client_models` is a thin wrapper over
// it. The seed implementations are retained verbatim under
// `coherence::naive` (driven by the History's full-scan views) so tests
// and `bench_scale` can prove the swept checkers return identical
// verdicts on clean and corrupted histories.
#pragma once

#include <string>
#include <vector>

#include "globe/coherence/history.hpp"
#include "globe/coherence/models.hpp"
#include "globe/util/ids.hpp"

namespace globe::coherence {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> violations;
  std::size_t events_checked = 0;

  void fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }

  /// Merges another result into this one.
  void merge(const CheckResult& other) {
    ok = ok && other.ok;
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
    events_checked += other.events_checked;
  }

  friend bool operator==(const CheckResult&, const CheckResult&) = default;

  [[nodiscard]] std::string summary(std::size_t max_lines = 5) const;
};

// -- Object-based models ---------------------------------------------

CheckResult check_pram(const History& h);
CheckResult check_fifo_pram(const History& h);
CheckResult check_causal(const History& h);
CheckResult check_sequential(const History& h);
CheckResult check_eventual_delivery(const History& h);

/// Dispatches to the checker for `model`.
CheckResult check_object_model(const History& h, ObjectModel model);

// -- Client-based models ----------------------------------------------

CheckResult check_monotonic_writes(const History& h, ClientId client);
CheckResult check_read_your_writes(const History& h, ClientId client);
CheckResult check_monotonic_reads(const History& h, ClientId client);
CheckResult check_writes_follow_reads(const History& h, ClientId client);

/// One client's session-guarantee request for check_sessions.
struct SessionSpec {
  ClientId client = 0;
  ClientModel models = ClientModel::kNone;
};

/// Verifies every spec'd client's session guarantees in one sweep over
/// the history: the store-order guarantees (monotonic writes,
/// writes-follow-reads) walk each store's apply log once for ALL
/// clients, and the read-path guarantees use the per-client operation
/// index. Returns one CheckResult per spec, in spec order, identical to
/// running the per-client checkers separately. Expects at most one spec
/// per client.
std::vector<CheckResult> check_sessions(const History& h,
                                        const std::vector<SessionSpec>& specs);

/// Checks every client-based guarantee in `models` for `client`.
CheckResult check_client_models(const History& h, ClientId client,
                                ClientModel models);

// -- Seed baseline ------------------------------------------------------
// The pre-index checker implementations, operating on the History's
// full-scan views (O(clients × events) for the session guarantees).
// Retained so equivalence tests and bench_scale can gate the swept
// checkers against the original verdicts.
namespace naive {

CheckResult check_pram(const History& h);
CheckResult check_fifo_pram(const History& h);
CheckResult check_causal(const History& h);
CheckResult check_sequential(const History& h);
CheckResult check_eventual_delivery(const History& h);
CheckResult check_object_model(const History& h, ObjectModel model);

CheckResult check_monotonic_writes(const History& h, ClientId client);
CheckResult check_read_your_writes(const History& h, ClientId client);
CheckResult check_monotonic_reads(const History& h, ClientId client);
CheckResult check_writes_follow_reads(const History& h, ClientId client);
CheckResult check_client_models(const History& h, ClientId client,
                                ClientModel models);

}  // namespace naive

}  // namespace globe::coherence
