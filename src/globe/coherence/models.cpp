#include "globe/coherence/models.hpp"

namespace globe::coherence {

const char* to_string(ObjectModel m) {
  switch (m) {
    case ObjectModel::kSequential: return "sequential";
    case ObjectModel::kPram: return "PRAM";
    case ObjectModel::kFifoPram: return "FIFO-PRAM";
    case ObjectModel::kCausal: return "causal";
    case ObjectModel::kEventual: return "eventual";
  }
  return "unknown";
}

std::string to_string(ClientModel m) {
  if (m == ClientModel::kNone) return "none";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (has(m, ClientModel::kMonotonicWrites)) append("MW");
  if (has(m, ClientModel::kReadYourWrites)) append("RYW");
  if (has(m, ClientModel::kMonotonicReads)) append("MR");
  if (has(m, ClientModel::kWritesFollowReads)) append("WFR");
  return out;
}

bool subsumes(ObjectModel object, ClientModel client) {
  switch (object) {
    case ObjectModel::kSequential:
      return true;  // sequential subsumes every session guarantee
    case ObjectModel::kPram:
      // PRAM orders each client's own writes at every store.
      return client == ClientModel::kMonotonicWrites;
    case ObjectModel::kCausal:
      // Causal coherence preserves all four session guarantees for
      // operations routed through stores that track the client's context;
      // we still enforce them client-side, so only MW (implied by causal
      // dependency of successive writes) is treated as subsumed.
      return client == ClientModel::kMonotonicWrites;
    case ObjectModel::kFifoPram:
    case ObjectModel::kEventual:
      return client == ClientModel::kNone;
  }
  return false;
}

}  // namespace globe::coherence
