#include "globe/coherence/streaming.hpp"

#include <algorithm>
#include <utility>

namespace globe::coherence {

void StreamingChecker::add_session(const SessionSpec& spec) {
  const std::size_t i = specs_.size();
  specs_.push_back(spec);
  mw_violations_.emplace_back();
  wfr_violations_.emplace_back();
  mw_checked_.push_back(0);
  if (has(spec.models, ClientModel::kMonotonicWrites)) {
    mw_slot_.emplace(spec.client, i);
  }
  if (has(spec.models, ClientModel::kReadYourWrites)) {
    ryw_slot_.emplace(spec.client, i);
  }
  if (has(spec.models, ClientModel::kMonotonicReads)) {
    mr_slot_.emplace(spec.client, i);
  }
  if (has(spec.models, ClientModel::kWritesFollowReads)) {
    wfr_slot_.emplace(spec.client, i);
  }
}

void StreamingChecker::note_page(PageId id, std::string_view name) {
  if (id == kNoPage) return;
  if (page_names_.size() <= id) page_names_.resize(id + 1);
  page_names_[id] = std::string(name);
}

std::string StreamingChecker::page_name(PageId id) const {
  if (id < page_names_.size()) return page_names_[id];
  return "#" + std::to_string(id);
}

void StreamingChecker::retain(std::size_t n) {
  retained_ += n;
  retained_hwm_ = std::max(retained_hwm_, retained_);
}

bool StreamingChecker::wants_client_ops(ClientId client) const {
  return model_ == ObjectModel::kSequential ||
         ryw_slot_.find(client) != ryw_slot_.end() ||
         mr_slot_.find(client) != mr_slot_.end();
}

void StreamingChecker::note_op_order(ClientState& c, ClientId client,
                                     std::uint64_t op_index) {
  // Mirror of History::note_client_op: strictly increasing indexes mean
  // record order is program order; an equal or regressing index drops
  // the client to the sorted re-check path at assembly.
  if (!c.has_ops || op_index > c.last_index) {
    c.last_index = op_index;
  } else if (c.in_order) {
    c.in_order = false;
    // The re-check cannot reproduce ops a horizon already retired, and
    // RYW/MR re-checks need the read clocks the default mode does not
    // buffer.
    if (c.sealed) exact_ = false;
    if (!options_.buffer_clocks &&
        (ryw_slot_.find(client) != ryw_slot_.end() ||
         mr_slot_.find(client) != mr_slot_.end())) {
      exact_ = false;
    }
  }
  c.has_ops = true;
}

void StreamingChecker::check_client_write(ClientState& c, ClientId client,
                                          const OpSum& op) {
  ++c.op_count;
  ++c.write_count;
  c.own_writes = std::max(c.own_writes, op.wid.seq);  // RYW floor
  if (model_ == ObjectModel::kSequential) {
    if (op.gseq > c.seq_floor) c.seq_floor = op.gseq;  // part 3 floor
    if (op.gseq != 0) {  // part 2: program order of writes
      if (op.gseq <= c.last_gseq) {
        c.seq_write_violations.push_back(
            "sequential: client " + std::to_string(client) + " write " +
            op.wid.str() +
            " ordered before its earlier write in the total order");
        ++eager_violations_;
      }
      c.last_gseq = op.gseq;
    }
  }
}

void StreamingChecker::check_client_read(ClientState& c, ClientId client,
                                         const OpSum& op,
                                         const VectorClock& store_clock) {
  ++c.op_count;
  ++c.read_count;
  if (ryw_slot_.find(client) != ryw_slot_.end() &&
      store_clock.get(client) < c.own_writes) {
    c.ryw_violations.push_back(
        "RYW: client " + std::to_string(client) + " read at store " +
        std::to_string(op.store) + " saw clock " + store_clock.str() +
        " missing its own write seq " + std::to_string(c.own_writes));
    ++eager_violations_;
  }
  if (mr_slot_.find(client) != mr_slot_.end()) {
    if (!store_clock.dominates(c.seen)) {
      c.mr_violations.push_back(
          "MR: client " + std::to_string(client) + " read at store " +
          std::to_string(op.store) + " saw clock " + store_clock.str() +
          " which does not dominate earlier read clock " + c.seen.str());
      ++eager_violations_;
      c.seen.merge(store_clock);
    } else {
      // merge() with a dominating clock IS that clock; the assignment
      // reuses the vector's capacity on the hot path.
      c.seen = store_clock;
    }
  }
  if (model_ == ObjectModel::kSequential) {  // part 3: read floor
    if (op.gseq < c.seq_floor) {
      c.seq_read_violations.push_back(
          "sequential: client " + std::to_string(client) + " read at store " +
          std::to_string(op.store) + " observed global seq " +
          std::to_string(op.gseq) + " older than its floor " +
          std::to_string(c.seq_floor));
      ++eager_violations_;
    } else {
      c.seq_floor = op.gseq;
    }
  }
}

void StreamingChecker::record_write(const WriteEvent& e) {
  // WFR: the write's arrival activates its spec and resolves any applies
  // that pended on it (a store can apply a write before the accepting
  // client's ack is recorded). The pending entries carry the applied
  // clock each apply was checked against, so the verdict is identical to
  // the post-hoc walk that knows all writes up front.
  auto slot = wfr_slot_.find(e.client);
  if (slot != wfr_slot_.end()) {
    wfr_active_.insert(slot->second);
    auto [rec, inserted] = wfr_recorded_.emplace(e.wid, slot->second);
    (void)rec;
    if (inserted) {
      auto pend = wfr_pending_.find(e.wid);
      if (pend != wfr_pending_.end()) {
        for (const PendingWfr& p : pend->second) {
          if (!p.applied_before.dominates(p.deps)) {
            wfr_violations_[slot->second].push_back(
                {p.store, p.idx, 0,
                 "WFR: store " + std::to_string(p.store) + " applied " +
                     e.wid.str() + " with deps " + p.deps.str() +
                     " before those dependencies were applied (applied=" +
                     p.applied_before.str() + ")"});
            ++eager_violations_;
          }
        }
        retained_ -= pend->second.size();
        wfr_pending_.erase(pend);
      }
    }
  }

  if (!wants_client_ops(e.client)) return;
  ClientState& c = clients_[e.client];
  note_op_order(c, e.client, e.client_op_index);
  OpSum op;
  op.op_index = e.client_op_index;
  op.is_write = true;
  op.wid = e.wid;
  op.gseq = e.global_seq;
  check_client_write(c, e.client, op);
  c.buffer.push_back(std::move(op));
  retain(1);
}

void StreamingChecker::record_read(const ReadEvent& e) {
  if (!wants_client_ops(e.client)) return;
  ClientState& c = clients_[e.client];
  note_op_order(c, e.client, e.client_op_index);
  OpSum op;
  op.op_index = e.client_op_index;
  op.is_write = false;
  op.gseq = e.store_global_seq;
  op.store = e.store;
  check_client_read(c, e.client, op, e.store_clock);
  if (options_.buffer_clocks) op.store_clock = e.store_clock;
  c.buffer.push_back(std::move(op));
  retain(1);
}

void StreamingChecker::record_apply(const ApplyEvent& e) {
  ++total_applies_;
  StoreState& s = stores_[e.store];
  const std::uint64_t idx = s.apply_count++;
  ++model_checked_;

  switch (model_) {
    case ObjectModel::kPram:
    case ObjectModel::kFifoPram: {
      const bool contiguous = model_ == ObjectModel::kPram;
      if (e.from_snapshot) {
        for (const auto& [c, v] : e.deps.entries()) {
          auto& cur = s.writer_seq[c];
          cur = std::max(cur, v);
        }
        break;
      }
      auto [it, inserted] = s.writer_seq.try_emplace(e.wid.client, 0);
      const std::uint64_t prev = it->second;
      if (e.wid.seq <= prev) {
        s.model_violations.push_back(
            "store " + std::to_string(e.store) + " applied " + e.wid.str() +
            " after seq " + std::to_string(prev) +
            " of the same writer (out of order)");
        ++eager_violations_;
      } else if (contiguous && e.wid.seq != prev + 1) {
        s.model_violations.push_back(
            "store " + std::to_string(e.store) + " applied " + e.wid.str() +
            " with a gap (expected seq " + std::to_string(prev + 1) + ")");
        ++eager_violations_;
      }
      if (e.wid.seq > prev) it->second = e.wid.seq;
      (void)inserted;
      break;
    }
    case ObjectModel::kCausal: {
      if (e.from_snapshot) {
        s.applied.merge(e.deps);
        break;
      }
      if (!s.applied.dominates(e.deps)) {
        s.model_violations.push_back(
            "causal: store " + std::to_string(e.store) + " applied " +
            e.wid.str() + " with deps " + e.deps.str() +
            " before those dependencies were applied (applied=" +
            s.applied.str() + ")");
        ++eager_violations_;
      }
      s.applied.observe(e.wid);
      break;
    }
    case ObjectModel::kSequential: {
      if (e.from_snapshot) {
        s.prev_gseq = std::max(s.prev_gseq, e.global_seq);
        break;
      }
      if (e.global_seq == 0) {
        s.seq_violations.push_back(
            {e.store, idx, 0,
             "sequential: store " + std::to_string(e.store) + " applied " +
                 e.wid.str() + " without a global sequence number"});
        ++eager_violations_;
        break;
      }
      if (e.global_seq != s.prev_gseq + 1) {
        s.seq_violations.push_back(
            {e.store, idx, 0,
             "sequential: store " + std::to_string(e.store) +
                 " applied global seq " + std::to_string(e.global_seq) +
                 " after " + std::to_string(s.prev_gseq) +
                 " (total order broken)"});
        ++eager_violations_;
      }
      s.prev_gseq = e.global_seq;
      seq_claims_[e.global_seq].push_back(SeqClaim{e.store, idx, e.wid});
      retain(1);
      break;
    }
    case ObjectModel::kEventual: {
      if (e.from_snapshot) {
        s.final_write.clear();  // full-state transfer replaced everything
      } else {
        s.final_write[e.page] = e.wid;  // later applies overwrite
      }
      break;
    }
  }

  // Monotonic writes (session guarantee, store-order side).
  if (!mw_slot_.empty()) {
    if (e.from_snapshot) {
      for (const auto& [c, v] : e.deps.entries()) {
        if (mw_slot_.find(c) == mw_slot_.end()) continue;
        auto& cur = s.mw_prev[c];
        cur = std::max(cur, v);
      }
    } else {
      auto slot = mw_slot_.find(e.wid.client);
      if (slot != mw_slot_.end()) {
        ++mw_checked_[slot->second];
        auto& cur = s.mw_prev[e.wid.client];
        if (e.wid.seq <= cur) {
          mw_violations_[slot->second].push_back(
              {e.store, idx, 0,
               "MW: store " + std::to_string(e.store) + " applied " +
                   e.wid.str() + " after seq " + std::to_string(cur)});
          ++eager_violations_;
        } else {
          cur = e.wid.seq;
        }
      }
    }
  }

  // Writes-follow-reads (session guarantee, store-order side). The
  // running applied clock is maintained from the very first event: the
  // post-hoc walk covers the whole log, while flagged sessions may be
  // registered after early applies (seed writes, bootstrap snapshots)
  // have already shaped the store's clock.
  if (e.from_snapshot) {
    s.wfr_applied.merge(e.deps);
  } else {
    if (!wfr_slot_.empty()) {
      auto sel = wfr_recorded_.find(e.wid);
      if (sel != wfr_recorded_.end()) {
        if (!s.wfr_applied.dominates(e.deps)) {
          wfr_violations_[sel->second].push_back(
              {e.store, idx, 0,
               "WFR: store " + std::to_string(e.store) + " applied " +
                   e.wid.str() + " with deps " + e.deps.str() +
                   " before those dependencies were applied (applied=" +
                   s.wfr_applied.str() + ")"});
          ++eager_violations_;
        }
      } else if (wfr_slot_.find(e.wid.client) != wfr_slot_.end()) {
        PendingWfr p;
        p.store = e.store;
        p.idx = idx;
        p.deps = e.deps;
        p.applied_before = s.wfr_applied;
        wfr_pending_[e.wid].push_back(std::move(p));
        retain(1);
      }
    }
    s.wfr_applied.observe(e.wid);
  }
}

std::size_t StreamingChecker::advance_horizon(const VectorClock& clock,
                                              std::uint64_t gseq) {
  // Entry-wise monotonic: a stale or partial announcement (fresh joiner
  // with an empty clock) can stall the horizon but never regress it.
  VectorClock merged = horizon_;
  merged.merge(clock);
  bool advanced = false;
  if (merged.entries() != horizon_.entries()) {
    horizon_ = std::move(merged);
    advanced = true;
  }
  if (gseq > horizon_gseq_) {
    horizon_gseq_ = gseq;
    advanced = true;
  }
  if (!advanced) return 0;
  ++horizon_advances_;

  std::size_t retired = 0;

  // 1. Client op buffers: for in-order clients the eager verdicts are
  //    exact and the buffer is pure re-check insurance, so seal the
  //    eager state and drop the processed prefix.
  for (auto& [id, c] : clients_) {
    (void)id;
    if (!c.in_order || c.buffer.empty()) continue;
    c.sealed = true;
    c.seal_own_writes = c.own_writes;
    c.seal_seen = c.seen;
    c.seal_seq_floor = c.seq_floor;
    c.seal_last_gseq = c.last_gseq;
    c.seal_ryw = c.ryw_violations.size();
    c.seal_mr = c.mr_violations.size();
    c.seal_seq_read = c.seq_read_violations.size();
    c.seal_seq_write = c.seq_write_violations.size();
    retired += c.buffer.size();
    c.buffer.clear();
    c.buffer.shrink_to_fit();
  }

  // 2. Sequential total-order claims below the gseq floor: every live
  //    member has applied past them, so a future claim on the same gseq
  //    at a live store would already break its per-store monotonicity.
  //    Conflicting claims are kept for assembly.
  for (auto it = seq_claims_.begin();
       it != seq_claims_.end() && it->first <= horizon_gseq_;) {
    const auto& claims = it->second;
    const bool unanimous =
        std::all_of(claims.begin(), claims.end(),
                    [&](const SeqClaim& cl) { return cl.wid == claims.front().wid; });
    if (unanimous) {
      retired += claims.size();
      it = seq_claims_.erase(it);
    } else {
      ++it;
    }
  }

  // 3. WFR applies pending on a write the whole cluster already applied:
  //    the ack will never be recorded (crashed client), drop them.
  for (auto it = wfr_pending_.begin(); it != wfr_pending_.end();) {
    if (horizon_.covers(it->first)) {
      retired += it->second.size();
      it = wfr_pending_.erase(it);
    } else {
      ++it;
    }
  }

  retained_ -= retired;
  events_retired_ += retired;
  return retired;
}

void StreamingChecker::reset() {
  stores_.clear();
  clients_.clear();
  seq_claims_.clear();
  wfr_recorded_.clear();
  wfr_active_.clear();
  wfr_pending_.clear();
  total_applies_ = 0;
  for (auto& v : mw_violations_) v.clear();
  for (auto& v : wfr_violations_) v.clear();
  std::fill(mw_checked_.begin(), mw_checked_.end(), 0);
  model_checked_ = 0;
  page_names_.assign(1, std::string());
  horizon_ = VectorClock{};
  horizon_gseq_ = 0;
  horizon_advances_ = 0;
  retained_ = 0;
  retained_hwm_ = 0;
  events_retired_ = 0;
  eager_violations_ = 0;
  exact_ = true;
}

void StreamingChecker::sort_keyed(std::vector<KeyedViolation>& v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const KeyedViolation& a, const KeyedViolation& b) {
                     if (a.store != b.store) return a.store < b.store;
                     if (a.idx != b.idx) return a.idx < b.idx;
                     return a.sub < b.sub;
                   });
}

StreamingChecker::ClientVerdicts StreamingChecker::client_verdicts(
    ClientId client) const {
  ClientVerdicts v;
  auto cit = clients_.find(client);
  if (cit == clients_.end()) return v;
  const ClientState& c = cit->second;
  v.op_count = c.op_count;
  v.read_count = c.read_count;
  v.write_count = c.write_count;
  if (c.in_order) {
    v.ryw = c.ryw_violations;
    v.mr = c.mr_violations;
    v.seq_read = c.seq_read_violations;
    v.seq_write = c.seq_write_violations;
    return v;
  }

  // Out-of-order client: re-run the per-client sweeps over the buffered
  // suffix in program order (History::sort_ops' comparator: by op index,
  // writes before reads on ties, record order within a kind), seeded
  // with the state sealed at the last horizon (defaults if never
  // sealed). exact() reports whether this path had everything it needed.
  std::vector<const OpSum*> ops;
  ops.reserve(c.buffer.size());
  for (const OpSum& o : c.buffer) ops.push_back(&o);
  std::stable_sort(ops.begin(), ops.end(),
                   [](const OpSum* a, const OpSum* b) {
                     if (a->op_index != b->op_index) {
                       return a->op_index < b->op_index;
                     }
                     return a->is_write && !b->is_write;
                   });
  const bool sealed = c.sealed;
  const auto prefix = [&](const std::vector<std::string>& src,
                          std::size_t n) {
    return std::vector<std::string>(src.begin(),
                                    src.begin() + static_cast<std::ptrdiff_t>(
                                                      sealed ? n : 0));
  };

  if (model_ == ObjectModel::kSequential) {
    // Part 2: total order vs the client's program order of writes. The
    // post-hoc sort's tie order among equal write op-indexes is
    // unspecified; record order is used here.
    v.seq_write = prefix(c.seq_write_violations, c.seal_seq_write);
    std::uint64_t prev = sealed ? c.seal_last_gseq : 0;
    for (const OpSum* o : ops) {
      if (!o->is_write || o->gseq == 0) continue;
      if (o->gseq <= prev) {
        v.seq_write.push_back(
            "sequential: client " + std::to_string(client) + " write " +
            o->wid.str() +
            " ordered before its earlier write in the total order");
      }
      prev = o->gseq;
    }
    // Part 3: observed global seqs vs the client's floor.
    v.seq_read = prefix(c.seq_read_violations, c.seal_seq_read);
    std::uint64_t floor = sealed ? c.seal_seq_floor : 0;
    for (const OpSum* o : ops) {
      if (o->is_write) {
        if (o->gseq > floor) floor = o->gseq;
      } else if (o->gseq < floor) {
        v.seq_read.push_back(
            "sequential: client " + std::to_string(client) +
            " read at store " + std::to_string(o->store) +
            " observed global seq " + std::to_string(o->gseq) +
            " older than its floor " + std::to_string(floor));
      } else {
        floor = o->gseq;
      }
    }
  }

  const bool want_ryw = ryw_slot_.find(client) != ryw_slot_.end();
  const bool want_mr = mr_slot_.find(client) != mr_slot_.end();
  if ((want_ryw || want_mr) && options_.buffer_clocks) {
    v.ryw = prefix(c.ryw_violations, c.seal_ryw);
    v.mr = prefix(c.mr_violations, c.seal_mr);
    std::uint64_t own = sealed ? c.seal_own_writes : 0;
    VectorClock seen = sealed ? c.seal_seen : VectorClock{};
    for (const OpSum* o : ops) {
      if (o->is_write) {
        own = std::max(own, o->wid.seq);
        continue;
      }
      if (want_ryw && o->store_clock.get(client) < own) {
        v.ryw.push_back("RYW: client " + std::to_string(client) +
                        " read at store " + std::to_string(o->store) +
                        " saw clock " + o->store_clock.str() +
                        " missing its own write seq " + std::to_string(own));
      }
      if (want_mr) {
        if (!o->store_clock.dominates(seen)) {
          v.mr.push_back("MR: client " + std::to_string(client) +
                         " read at store " + std::to_string(o->store) +
                         " saw clock " + o->store_clock.str() +
                         " which does not dominate earlier read clock " +
                         seen.str());
        }
        seen.merge(o->store_clock);
      }
    }
  } else if (want_ryw || want_mr) {
    // No buffered clocks: fall back to the eager (record-order) results;
    // exact() is already false for this history.
    v.ryw = c.ryw_violations;
    v.mr = c.mr_violations;
  }
  return v;
}

CheckResult StreamingChecker::model_result() const {
  CheckResult res;
  switch (model_) {
    case ObjectModel::kPram:
    case ObjectModel::kFifoPram:
    case ObjectModel::kCausal: {
      res.events_checked = model_checked_;
      for (const auto& [store, s] : stores_) {
        (void)store;
        for (const std::string& what : s.model_violations) res.fail(what);
      }
      break;
    }
    case ObjectModel::kSequential: {
      // Part 1: per-store order plus the cross-store total-order claim
      // resolution. The canonical WriteId for a gseq is the first claim
      // in the post-hoc walk order (store ascending, apply order);
      // conflicting later claims emit at their own apply position.
      res.events_checked = model_checked_;
      std::map<StoreId, std::vector<KeyedViolation>> resolved;
      for (const auto& [gseq, claims] : seq_claims_) {
        if (claims.size() <= 1) continue;
        std::vector<SeqClaim> sorted = claims;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const SeqClaim& a, const SeqClaim& b) {
                           if (a.store != b.store) return a.store < b.store;
                           return a.idx < b.idx;
                         });
        const WriteId canonical = sorted.front().wid;
        for (std::size_t i = 1; i < sorted.size(); ++i) {
          if (sorted[i].wid == canonical) continue;
          resolved[sorted[i].store].push_back(
              {sorted[i].store, sorted[i].idx, 1,
               "sequential: global seq " + std::to_string(gseq) +
                   " maps to both " + canonical.str() + " and " +
                   sorted[i].wid.str()});
        }
      }
      for (const auto& [store, s] : stores_) {
        std::vector<KeyedViolation> merged = s.seq_violations;
        auto rit = resolved.find(store);
        if (rit != resolved.end()) {
          merged.insert(merged.end(), rit->second.begin(), rit->second.end());
          sort_keyed(merged);
        }
        for (KeyedViolation& kv : merged) res.fail(std::move(kv.what));
      }
      // Parts 2 and 3, per client ascending like History::clients().
      std::vector<ClientId> cids;
      cids.reserve(clients_.size());
      for (const auto& [cid, cs] : clients_) {
        (void)cs;
        cids.push_back(cid);
      }
      std::sort(cids.begin(), cids.end());
      std::vector<ClientVerdicts> verdicts;
      verdicts.reserve(cids.size());
      for (ClientId cid : cids) verdicts.push_back(client_verdicts(cid));
      for (const ClientVerdicts& cv : verdicts) {
        res.events_checked += cv.write_count;
        for (const std::string& what : cv.seq_write) res.fail(what);
      }
      for (const ClientVerdicts& cv : verdicts) {
        res.events_checked += cv.op_count;
        for (const std::string& what : cv.seq_read) res.fail(what);
      }
      break;
    }
    case ObjectModel::kEventual: {
      if (stores_.empty()) break;
      res.events_checked = model_checked_;
      std::map<PageId, std::map<WriteId, std::vector<StoreId>>> by_page;
      for (const auto& [store, s] : stores_) {
        for (const auto& [page, wid] : s.final_write) {
          by_page[page][wid].push_back(store);
        }
      }
      for (const auto& [page, winners] : by_page) {
        if (winners.size() <= 1) continue;
        std::string what = "eventual: page '" + page_name(page) +
                           "' settled on different final writes:";
        for (const auto& [wid, who] : winners) {
          what += " " + wid.str() + "@stores{";
          for (std::size_t i = 0; i < who.size(); ++i) {
            what += (i != 0 ? "," : "") + std::to_string(who[i]);
          }
          what += "}";
        }
        res.fail(std::move(what));
      }
      break;
    }
  }
  return res;
}

std::vector<CheckResult> StreamingChecker::session_results() const {
  std::vector<CheckResult> out(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SessionSpec& spec = specs_[i];
    CheckResult mw, ryw, mr, wfr;
    if (has(spec.models, ClientModel::kMonotonicWrites)) {
      mw.events_checked = mw_checked_[i];
      std::vector<KeyedViolation> keyed = mw_violations_[i];
      sort_keyed(keyed);
      for (KeyedViolation& kv : keyed) mw.fail(std::move(kv.what));
    }
    const bool want_ryw = has(spec.models, ClientModel::kReadYourWrites);
    const bool want_mr = has(spec.models, ClientModel::kMonotonicReads);
    if (want_ryw || want_mr) {
      const ClientVerdicts v = client_verdicts(spec.client);
      if (want_ryw) {
        ryw.events_checked = v.op_count;
        for (const std::string& what : v.ryw) ryw.fail(what);
      }
      if (want_mr) {
        mr.events_checked = v.read_count;
        for (const std::string& what : v.mr) mr.fail(what);
      }
    }
    if (has(spec.models, ClientModel::kWritesFollowReads) &&
        wfr_active_.find(i) != wfr_active_.end()) {
      wfr.events_checked = total_applies_;
      std::vector<KeyedViolation> keyed = wfr_violations_[i];
      sort_keyed(keyed);
      for (KeyedViolation& kv : keyed) wfr.fail(std::move(kv.what));
    }
    out[i].merge(mw);
    out[i].merge(ryw);
    out[i].merge(mr);
    out[i].merge(wfr);
  }
  return out;
}

}  // namespace globe::coherence
