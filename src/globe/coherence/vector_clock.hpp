// Vector clocks over client identifiers.
//
// A VectorClock maps each writing client to the highest *contiguous*
// sequence number of that client's writes known/applied. It serves three
// roles in the library:
//   * causal coherence: write dependencies and applicability tests,
//   * session guarantees: read-sets and write-sets (monotonic reads,
//     writes-follow-reads) are summarized as vector clocks,
//   * anti-entropy: replicas exchange clocks to compute missing records.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "globe/coherence/write_id.hpp"
#include "globe/util/buffer.hpp"
#include "globe/util/ids.hpp"

namespace globe::coherence {

class VectorClock {
 public:
  VectorClock() = default;

  /// Sequence number recorded for `c` (0 if absent).
  [[nodiscard]] std::uint64_t get(ClientId c) const {
    auto it = entries_.find(c);
    return it == entries_.end() ? 0 : it->second;
  }

  /// Sets the entry for `c`; removing it when v == 0 keeps clocks canonical.
  void set(ClientId c, std::uint64_t v) {
    if (v == 0) {
      entries_.erase(c);
    } else {
      entries_[c] = v;
    }
  }

  /// Advances the entry for `c` to at least `v`.
  void advance(ClientId c, std::uint64_t v) {
    auto it = entries_.find(c);
    if (it == entries_.end()) {
      if (v > 0) entries_[c] = v;
    } else if (v > it->second) {
      it->second = v;
    }
  }

  /// Records a write: advances the writer's entry.
  void observe(const WriteId& w) { advance(w.client, w.seq); }

  /// Component-wise maximum with `other`.
  void merge(const VectorClock& other) {
    for (const auto& [c, v] : other.entries_) advance(c, v);
  }

  /// True if every entry of `other` is <= the corresponding entry here.
  [[nodiscard]] bool dominates(const VectorClock& other) const {
    for (const auto& [c, v] : other.entries_) {
      if (get(c) < v) return false;
    }
    return true;
  }

  /// True if this and other are incomparable (concurrent).
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return !dominates(other) && !other.dominates(*this);
  }

  /// True if the write `w` is "covered": we have seen it.
  [[nodiscard]] bool covers(const WriteId& w) const {
    return get(w.client) >= w.seq;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Sum of all entries; a scalar progress measure used by staleness
  /// metrics ("how many writes behind is this replica").
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [c, v] : entries_) sum += v;
    return sum;
  }

  [[nodiscard]] const std::map<ClientId, std::uint64_t>& entries() const {
    return entries_;
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [c, v] : entries_) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(c) + ":" + std::to_string(v);
    }
    return out + "}";
  }

  void encode(util::Writer& w) const {
    w.varint(entries_.size());
    for (const auto& [c, v] : entries_) {
      w.u32(c);
      w.varint(v);
    }
  }

  static VectorClock decode(util::Reader& r) {
    VectorClock vc;
    const std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const ClientId c = r.u32();
      const std::uint64_t v = r.varint();
      vc.set(c, v);
    }
    return vc;
  }

 private:
  // std::map keeps encoding deterministic (sorted by client id).
  std::map<ClientId, std::uint64_t> entries_;
};

}  // namespace globe::coherence
