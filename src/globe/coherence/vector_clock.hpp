// Vector clocks over client identifiers.
//
// A VectorClock maps each writing client to the highest *contiguous*
// sequence number of that client's writes known/applied. It serves three
// roles in the library:
//   * causal coherence: write dependencies and applicability tests,
//   * session guarantees: read-sets and write-sets (monotonic reads,
//     writes-follow-reads) are summarized as vector clocks,
//   * anti-entropy: replicas exchange clocks to compute missing records.
//
// Storage is a flat vector of (client, seq) pairs kept sorted by client
// id: clocks are copied, merged, and compared on every coherence-message
// hot path, and the contiguous layout makes those operations cache-local
// with one allocation per clock instead of one per entry (std::map).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "globe/coherence/write_id.hpp"
#include "globe/util/assert.hpp"
#include "globe/util/buffer.hpp"
#include "globe/util/ids.hpp"

namespace globe::coherence {

class VectorClock {
 public:
  using Entry = std::pair<ClientId, std::uint64_t>;

  VectorClock() = default;

  /// Sequence number recorded for `c` (0 if absent).
  [[nodiscard]] std::uint64_t get(ClientId c) const {
    auto it = find(c);
    return it != entries_.end() && it->first == c ? it->second : 0;
  }

  /// Sets the entry for `c`; removing it when v == 0 keeps clocks canonical.
  void set(ClientId c, std::uint64_t v) {
    auto it = find(c);
    const bool present = it != entries_.end() && it->first == c;
    if (v == 0) {
      if (present) entries_.erase(it);
    } else if (present) {
      it->second = v;
    } else {
      entries_.insert(it, Entry{c, v});
    }
  }

  /// Advances the entry for `c` to at least `v`.
  void advance(ClientId c, std::uint64_t v) {
    if (v == 0) return;
    auto it = find(c);
    if (it != entries_.end() && it->first == c) {
      if (v > it->second) it->second = v;
    } else {
      entries_.insert(it, Entry{c, v});
    }
  }

  /// Records a write: advances the writer's entry.
  void observe(const WriteId& w) { advance(w.client, w.seq); }

  /// Component-wise maximum with `other`: one linear merge over two
  /// sorted entry vectors.
  void merge(const VectorClock& other) {
    if (other.entries_.empty()) return;
    if (entries_.empty()) {
      entries_ = other.entries_;
      return;
    }
    std::vector<Entry> merged;
    merged.reserve(entries_.size() + other.entries_.size());
    auto a = entries_.begin();
    auto b = other.entries_.begin();
    while (a != entries_.end() && b != other.entries_.end()) {
      if (a->first < b->first) {
        merged.push_back(*a++);
      } else if (b->first < a->first) {
        merged.push_back(*b++);
      } else {
        merged.emplace_back(a->first, std::max(a->second, b->second));
        ++a;
        ++b;
      }
    }
    merged.insert(merged.end(), a, entries_.end());
    merged.insert(merged.end(), b, other.entries_.end());
    entries_ = std::move(merged);
    // Every lookup below binary-searches on the sorted entries; the
    // check is O(n) per merge, so it rides the checked build only.
    GLOBE_DCHECK_MSG(
        std::is_sorted(entries_.begin(), entries_.end(),
                       [](const Entry& x, const Entry& y) {
                         return x.first < y.first;
                       }),
        "merge broke the sorted-entry invariant");
  }

  /// Component-wise minimum with `other` — the stability-horizon fold.
  /// An entry absent on either side is 0, so it drops out entirely,
  /// keeping clocks canonical (no explicit zero entries).
  void floor_with(const VectorClock& other) {
    std::vector<Entry> out;
    out.reserve(std::min(entries_.size(), other.entries_.size()));
    auto a = entries_.begin();
    auto b = other.entries_.begin();
    while (a != entries_.end() && b != other.entries_.end()) {
      if (a->first < b->first) {
        ++a;
      } else if (b->first < a->first) {
        ++b;
      } else {
        out.emplace_back(a->first, std::min(a->second, b->second));
        ++a;
        ++b;
      }
    }
    entries_ = std::move(out);
  }

  /// True if every entry of `other` is <= the corresponding entry here.
  /// Two-pointer walk over the sorted entries.
  [[nodiscard]] bool dominates(const VectorClock& other) const {
    auto a = entries_.begin();
    for (const auto& [c, v] : other.entries_) {
      while (a != entries_.end() && a->first < c) ++a;
      if (a == entries_.end() || a->first != c || a->second < v) return false;
    }
    return true;
  }

  /// True if this and other are incomparable (concurrent).
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return !dominates(other) && !other.dominates(*this);
  }

  /// True if the write `w` is "covered": we have seen it.
  [[nodiscard]] bool covers(const WriteId& w) const {
    return get(w.client) >= w.seq;
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Sum of all entries; a scalar progress measure used by staleness
  /// metrics ("how many writes behind is this replica").
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [c, v] : entries_) sum += v;
    return sum;
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [c, v] : entries_) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(c) + ":" + std::to_string(v);
    }
    return out + "}";
  }

  void encode(util::Writer& w) const {
    w.varint(entries_.size());
    for (const auto& [c, v] : entries_) {
      w.u32(c);
      w.varint(v);
    }
  }

  static VectorClock decode(util::Reader& r) {
    VectorClock vc;
    const std::uint64_t n = r.varint();
    vc.entries_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const ClientId c = r.u32();
      const std::uint64_t v = r.varint();
      vc.set(c, v);  // tolerates unsorted/duplicate wire entries
    }
    return vc;
  }

 private:
  [[nodiscard]] std::vector<Entry>::const_iterator find(ClientId c) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), c,
        [](const Entry& e, ClientId id) { return e.first < id; });
  }
  [[nodiscard]] std::vector<Entry>::iterator find(ClientId c) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), c,
        [](const Entry& e, ClientId id) { return e.first < id; });
  }

  // Sorted by client id; keeps the wire encoding deterministic.
  std::vector<Entry> entries_;
};

}  // namespace globe::coherence
