#include "globe/coherence/checkers.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "globe/coherence/models.hpp"

namespace globe::coherence {

std::string CheckResult::summary(std::size_t max_lines) const {
  if (ok) {
    return "OK (" + std::to_string(events_checked) + " events checked)";
  }
  std::string out = std::to_string(violations.size()) + " violation(s):";
  for (std::size_t i = 0; i < violations.size() && i < max_lines; ++i) {
    out += "\n  " + violations[i];
  }
  if (violations.size() > max_lines) {
    out += "\n  ... (" + std::to_string(violations.size() - max_lines) +
           " more)";
  }
  return out;
}

namespace {

/// Shared core of the PRAM/FIFO checks: per store, per writer, applied
/// sequence numbers must be strictly increasing; when `contiguous`, every
/// write must be applied (no gaps).
CheckResult check_per_writer_order(const History& h, bool contiguous) {
  CheckResult res;
  for (StoreId store : h.stores()) {
    std::unordered_map<ClientId, std::uint64_t> last_seq;
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        for (const auto& [c, v] : a->deps.entries()) {
          auto& cur = last_seq[c];
          cur = std::max(cur, v);
        }
        continue;
      }
      auto [it, inserted] = last_seq.try_emplace(a->wid.client, 0);
      const std::uint64_t prev = it->second;
      if (a->wid.seq <= prev) {
        res.fail("store " + std::to_string(store) + " applied " +
                 a->wid.str() + " after seq " + std::to_string(prev) +
                 " of the same writer (out of order)");
      } else if (contiguous && a->wid.seq != prev + 1) {
        res.fail("store " + std::to_string(store) + " applied " +
                 a->wid.str() + " with a gap (expected seq " +
                 std::to_string(prev + 1) + ")");
      }
      if (a->wid.seq > prev) it->second = a->wid.seq;
      (void)inserted;
    }
  }
  return res;
}

/// Verifies that apply order respects each write's dependency clock.
/// Used for causal coherence and (restricted) writes-follow-reads.
CheckResult check_dependencies_respected(
    const History& h, const std::set<WriteId>& only_these_writes,
    const char* label) {
  CheckResult res;
  // Look up full dependency info from the write events.
  std::unordered_map<WriteId, const WriteEvent*> by_wid;
  for (const auto& w : h.writes()) by_wid[w.wid] = &w;

  for (StoreId store : h.stores()) {
    VectorClock applied;
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        applied.merge(a->deps);
        continue;
      }
      const bool selected =
          only_these_writes.empty() || only_these_writes.count(a->wid) > 0;
      if (selected && !applied.dominates(a->deps)) {
        res.fail(std::string(label) + ": store " + std::to_string(store) +
                 " applied " + a->wid.str() + " with deps " + a->deps.str() +
                 " before those dependencies were applied (applied=" +
                 applied.str() + ")");
      }
      applied.observe(a->wid);
    }
  }
  return res;
}

}  // namespace

CheckResult check_pram(const History& h) {
  return check_per_writer_order(h, /*contiguous=*/true);
}

CheckResult check_fifo_pram(const History& h) {
  return check_per_writer_order(h, /*contiguous=*/false);
}

CheckResult check_causal(const History& h) {
  return check_dependencies_respected(h, {}, "causal");
}

CheckResult check_sequential(const History& h) {
  CheckResult res;

  // 1. Every applied write must carry a primary-assigned global sequence
  //    number, and each store must apply in strictly increasing global
  //    order with no gaps relative to what it applied: the sequences at
  //    all stores must then be prefixes of one another (one total order).
  std::map<std::uint64_t, WriteId> order;  // global_seq -> wid
  for (StoreId store : h.stores()) {
    std::uint64_t prev = 0;
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        prev = std::max(prev, a->global_seq);
        continue;
      }
      if (a->global_seq == 0) {
        res.fail("sequential: store " + std::to_string(store) + " applied " +
                 a->wid.str() + " without a global sequence number");
        continue;
      }
      if (a->global_seq != prev + 1) {
        res.fail("sequential: store " + std::to_string(store) +
                 " applied global seq " + std::to_string(a->global_seq) +
                 " after " + std::to_string(prev) +
                 " (total order broken)");
      }
      prev = a->global_seq;
      auto [it, inserted] = order.try_emplace(a->global_seq, a->wid);
      if (!inserted && it->second != a->wid) {
        res.fail("sequential: global seq " + std::to_string(a->global_seq) +
                 " maps to both " + it->second.str() + " and " +
                 a->wid.str());
      }
    }
  }

  // 2. The total order must respect each client's program order of writes.
  {
    std::unordered_map<ClientId, std::uint64_t> last_gseq;
    std::vector<const WriteEvent*> writes;
    for (const auto& w : h.writes()) writes.push_back(&w);
    std::sort(writes.begin(), writes.end(),
              [](const WriteEvent* a, const WriteEvent* b) {
                if (a->client != b->client) return a->client < b->client;
                return a->client_op_index < b->client_op_index;
              });
    for (const WriteEvent* w : writes) {
      ++res.events_checked;
      if (w->global_seq == 0) continue;  // flagged above via applies
      auto& prev = last_gseq[w->client];
      if (w->global_seq <= prev) {
        res.fail("sequential: client " + std::to_string(w->client) +
                 " write " + w->wid.str() +
                 " ordered before its earlier write in the total order");
      }
      prev = w->global_seq;
    }
  }

  // 3. Reads: per client, the observed global sequence number must be
  //    monotonically nondecreasing and at least the client's own last
  //    write. Together with the unique total write order this yields a
  //    single interleaving consistent with every client's program order.
  for (ClientId c : h.clients()) {
    std::uint64_t floor = 0;
    for (const History::ClientOp& op : h.client_ops(c)) {
      ++res.events_checked;
      if (op.is_write) {
        if (op.write->global_seq > floor) floor = op.write->global_seq;
      } else {
        if (op.read->store_global_seq < floor) {
          res.fail("sequential: client " + std::to_string(c) +
                   " read at store " + std::to_string(op.read->store) +
                   " observed global seq " +
                   std::to_string(op.read->store_global_seq) +
                   " older than its floor " + std::to_string(floor));
        } else {
          floor = op.read->store_global_seq;
        }
      }
    }
  }
  return res;
}

CheckResult check_eventual_delivery(const History& h) {
  CheckResult res;
  const auto stores = h.stores();
  if (stores.empty()) return res;

  // Under eventual coherence (last-writer-wins), a record that loses the
  // conflict at one replica is legitimately never applied downstream of
  // it; what must agree after quiescence is each page's *final* applied
  // write. Apply events are recorded only for state-changing
  // applications, so "the last apply per (store, page)" is that store's
  // final content for the page. Stores that received the page only via
  // snapshot transfer record no applies and are vacuously consistent
  // here (Testbed::converged() compares full states).
  std::map<StoreId, std::map<std::string, WriteId>> final_write;
  for (StoreId store : stores) {
    auto& per_page = final_write[store];
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        per_page.clear();  // full-state transfer replaced everything
        continue;
      }
      per_page[a->page] = a->wid;  // later applies overwrite
    }
  }
  std::map<std::string, std::map<WriteId, std::vector<StoreId>>> by_page;
  for (const auto& [store, per_page] : final_write) {
    for (const auto& [page, wid] : per_page) {
      by_page[page][wid].push_back(store);
    }
  }
  for (const auto& [page, winners] : by_page) {
    if (winners.size() <= 1) continue;
    std::string what = "eventual: page '" + page +
                       "' settled on different final writes:";
    for (const auto& [wid, who] : winners) {
      what += " " + wid.str() + "@stores{";
      for (std::size_t i = 0; i < who.size(); ++i) {
        what += (i != 0 ? "," : "") + std::to_string(who[i]);
      }
      what += "}";
    }
    res.fail(std::move(what));
  }
  return res;
}

CheckResult check_object_model(const History& h, ObjectModel model) {
  switch (model) {
    case ObjectModel::kSequential: return check_sequential(h);
    case ObjectModel::kPram: return check_pram(h);
    case ObjectModel::kFifoPram: return check_fifo_pram(h);
    case ObjectModel::kCausal: return check_causal(h);
    case ObjectModel::kEventual: return check_eventual_delivery(h);
  }
  CheckResult res;
  res.fail("unknown object model");
  return res;
}

CheckResult check_monotonic_writes(const History& h, ClientId client) {
  CheckResult res;
  for (StoreId store : h.stores()) {
    std::uint64_t prev = 0;
    for (const ApplyEvent* a : h.store_applies(store)) {
      if (a->from_snapshot) {
        prev = std::max(prev, a->deps.get(client));
        continue;
      }
      if (a->wid.client != client) continue;
      ++res.events_checked;
      if (a->wid.seq <= prev) {
        res.fail("MW: store " + std::to_string(store) + " applied " +
                 a->wid.str() + " after seq " + std::to_string(prev));
      } else {
        prev = a->wid.seq;
      }
    }
  }
  return res;
}

CheckResult check_read_your_writes(const History& h, ClientId client) {
  CheckResult res;
  std::uint64_t own_writes = 0;  // highest seq this client has written
  for (const History::ClientOp& op : h.client_ops(client)) {
    ++res.events_checked;
    if (op.is_write) {
      own_writes = std::max(own_writes, op.write->wid.seq);
    } else if (op.read->store_clock.get(client) < own_writes) {
      res.fail("RYW: client " + std::to_string(client) + " read at store " +
               std::to_string(op.read->store) + " saw clock " +
               op.read->store_clock.str() + " missing its own write seq " +
               std::to_string(own_writes));
    }
  }
  return res;
}

CheckResult check_monotonic_reads(const History& h, ClientId client) {
  CheckResult res;
  VectorClock seen;
  for (const History::ClientOp& op : h.client_ops(client)) {
    if (op.is_write) continue;
    ++res.events_checked;
    if (!op.read->store_clock.dominates(seen)) {
      res.fail("MR: client " + std::to_string(client) + " read at store " +
               std::to_string(op.read->store) + " saw clock " +
               op.read->store_clock.str() +
               " which does not dominate earlier read clock " + seen.str());
    }
    seen.merge(op.read->store_clock);
  }
  return res;
}

CheckResult check_writes_follow_reads(const History& h, ClientId client) {
  // The client's writes must be ordered, at every store, after the writes
  // the client had observed when issuing them. The write's recorded deps
  // clock captures that read context; reuse the dependency checker
  // restricted to this client's writes.
  std::set<WriteId> own;
  for (const auto& w : h.writes()) {
    if (w.client == client) own.insert(w.wid);
  }
  if (own.empty()) return {};
  return check_dependencies_respected(h, own, "WFR");
}

CheckResult check_client_models(const History& h, ClientId client,
                                ClientModel models) {
  CheckResult res;
  if (has(models, ClientModel::kMonotonicWrites)) {
    res.merge(check_monotonic_writes(h, client));
  }
  if (has(models, ClientModel::kReadYourWrites)) {
    res.merge(check_read_your_writes(h, client));
  }
  if (has(models, ClientModel::kMonotonicReads)) {
    res.merge(check_monotonic_reads(h, client));
  }
  if (has(models, ClientModel::kWritesFollowReads)) {
    res.merge(check_writes_follow_reads(h, client));
  }
  return res;
}

}  // namespace globe::coherence
