#include "globe/coherence/checkers.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "globe/coherence/models.hpp"

namespace globe::coherence {

std::string CheckResult::summary(std::size_t max_lines) const {
  if (ok) {
    return "OK (" + std::to_string(events_checked) + " events checked)";
  }
  std::string out = std::to_string(violations.size()) + " violation(s):";
  for (std::size_t i = 0; i < violations.size() && i < max_lines; ++i) {
    out += "\n  " + violations[i];
  }
  if (violations.size() > max_lines) {
    out += "\n  ... (" + std::to_string(violations.size() - max_lines) +
           " more)";
  }
  return out;
}

namespace {

/// Shared core of the PRAM/FIFO checks: per store, per writer, applied
/// sequence numbers must be strictly increasing; when `contiguous`, every
/// write must be applied (no gaps).
CheckResult check_per_writer_order(const History& h, bool contiguous) {
  CheckResult res;
  for (StoreId store : h.stores()) {
    std::unordered_map<ClientId, std::uint64_t> last_seq;
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        for (const auto& [c, v] : a->deps.entries()) {
          auto& cur = last_seq[c];
          cur = std::max(cur, v);
        }
        continue;
      }
      auto [it, inserted] = last_seq.try_emplace(a->wid.client, 0);
      const std::uint64_t prev = it->second;
      if (a->wid.seq <= prev) {
        res.fail("store " + std::to_string(store) + " applied " +
                 a->wid.str() + " after seq " + std::to_string(prev) +
                 " of the same writer (out of order)");
      } else if (contiguous && a->wid.seq != prev + 1) {
        res.fail("store " + std::to_string(store) + " applied " +
                 a->wid.str() + " with a gap (expected seq " +
                 std::to_string(prev + 1) + ")");
      }
      if (a->wid.seq > prev) it->second = a->wid.seq;
      (void)inserted;
    }
  }
  return res;
}

/// Verifies that apply order respects every write's dependency clock
/// (causal coherence; the writes-follow-reads restriction lives in the
/// check_sessions sweep).
CheckResult check_dependencies_respected(const History& h,
                                         const char* label) {
  CheckResult res;
  for (StoreId store : h.stores()) {
    VectorClock applied;
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        applied.merge(a->deps);
        continue;
      }
      if (!applied.dominates(a->deps)) {
        res.fail(std::string(label) + ": store " + std::to_string(store) +
                 " applied " + a->wid.str() + " with deps " + a->deps.str() +
                 " before those dependencies were applied (applied=" +
                 applied.str() + ")");
      }
      applied.observe(a->wid);
    }
  }
  return res;
}

}  // namespace

CheckResult check_pram(const History& h) {
  return check_per_writer_order(h, /*contiguous=*/true);
}

CheckResult check_fifo_pram(const History& h) {
  return check_per_writer_order(h, /*contiguous=*/false);
}

CheckResult check_causal(const History& h) {
  return check_dependencies_respected(h, "causal");
}

CheckResult check_sequential(const History& h) {
  CheckResult res;

  // 1. Every applied write must carry a primary-assigned global sequence
  //    number, and each store must apply in strictly increasing global
  //    order with no gaps relative to what it applied: the sequences at
  //    all stores must then be prefixes of one another (one total order).
  std::map<std::uint64_t, WriteId> order;  // global_seq -> wid
  for (StoreId store : h.stores()) {
    std::uint64_t prev = 0;
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        prev = std::max(prev, a->global_seq);
        continue;
      }
      if (a->global_seq == 0) {
        res.fail("sequential: store " + std::to_string(store) + " applied " +
                 a->wid.str() + " without a global sequence number");
        continue;
      }
      if (a->global_seq != prev + 1) {
        res.fail("sequential: store " + std::to_string(store) +
                 " applied global seq " + std::to_string(a->global_seq) +
                 " after " + std::to_string(prev) +
                 " (total order broken)");
      }
      prev = a->global_seq;
      auto [it, inserted] = order.try_emplace(a->global_seq, a->wid);
      if (!inserted && it->second != a->wid) {
        res.fail("sequential: global seq " + std::to_string(a->global_seq) +
                 " maps to both " + it->second.str() + " and " +
                 a->wid.str());
      }
    }
  }

  // 2. The total order must respect each client's program order of writes.
  {
    std::unordered_map<ClientId, std::uint64_t> last_gseq;
    std::vector<const WriteEvent*> writes;
    for (const auto& w : h.writes()) writes.push_back(&w);
    std::sort(writes.begin(), writes.end(),
              [](const WriteEvent* a, const WriteEvent* b) {
                if (a->client != b->client) return a->client < b->client;
                return a->client_op_index < b->client_op_index;
              });
    for (const WriteEvent* w : writes) {
      ++res.events_checked;
      if (w->global_seq == 0) continue;  // flagged above via applies
      auto& prev = last_gseq[w->client];
      if (w->global_seq <= prev) {
        res.fail("sequential: client " + std::to_string(w->client) +
                 " write " + w->wid.str() +
                 " ordered before its earlier write in the total order");
      }
      prev = w->global_seq;
    }
  }

  // 3. Reads: per client, the observed global sequence number must be
  //    monotonically nondecreasing and at least the client's own last
  //    write. Together with the unique total write order this yields a
  //    single interleaving consistent with every client's program order.
  for (ClientId c : h.clients()) {
    std::uint64_t floor = 0;
    for (const History::ClientOp& op : h.client_ops(c)) {
      ++res.events_checked;
      if (op.is_write) {
        if (op.write->global_seq > floor) floor = op.write->global_seq;
      } else {
        if (op.read->store_global_seq < floor) {
          res.fail("sequential: client " + std::to_string(c) +
                   " read at store " + std::to_string(op.read->store) +
                   " observed global seq " +
                   std::to_string(op.read->store_global_seq) +
                   " older than its floor " + std::to_string(floor));
        } else {
          floor = op.read->store_global_seq;
        }
      }
    }
  }
  return res;
}

CheckResult check_eventual_delivery(const History& h) {
  CheckResult res;
  const auto stores = h.stores();
  if (stores.empty()) return res;

  // Under eventual coherence (last-writer-wins), a record that loses the
  // conflict at one replica is legitimately never applied downstream of
  // it; what must agree after quiescence is each page's *final* applied
  // write. Apply events are recorded only for state-changing
  // applications, so "the last apply per (store, page)" is that store's
  // final content for the page. Stores that received the page only via
  // snapshot transfer record no applies and are vacuously consistent
  // here (Testbed::converged() compares full states).
  std::map<StoreId, std::map<PageId, WriteId>> final_write;
  for (StoreId store : stores) {
    auto& per_page = final_write[store];
    for (const ApplyEvent* a : h.store_applies(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        per_page.clear();  // full-state transfer replaced everything
        continue;
      }
      per_page[a->page] = a->wid;  // later applies overwrite
    }
  }
  std::map<PageId, std::map<WriteId, std::vector<StoreId>>> by_page;
  for (const auto& [store, per_page] : final_write) {
    for (const auto& [page, wid] : per_page) {
      by_page[page][wid].push_back(store);
    }
  }
  for (const auto& [page, winners] : by_page) {
    if (winners.size() <= 1) continue;
    std::string what = "eventual: page '" + h.page_name(page) +
                       "' settled on different final writes:";
    for (const auto& [wid, who] : winners) {
      what += " " + wid.str() + "@stores{";
      for (std::size_t i = 0; i < who.size(); ++i) {
        what += (i != 0 ? "," : "") + std::to_string(who[i]);
      }
      what += "}";
    }
    res.fail(std::move(what));
  }
  return res;
}

CheckResult check_object_model(const History& h, ObjectModel model) {
  switch (model) {
    case ObjectModel::kSequential: return check_sequential(h);
    case ObjectModel::kPram: return check_pram(h);
    case ObjectModel::kFifoPram: return check_fifo_pram(h);
    case ObjectModel::kCausal: return check_causal(h);
    case ObjectModel::kEventual: return check_eventual_delivery(h);
  }
  CheckResult res;
  res.fail("unknown object model");
  return res;
}

namespace {

// Read-path guarantees over one client's operation sequence. These were
// already per-client in the seed; with the operation index they cost
// O(ops of the client) instead of a full history scan per client.

CheckResult check_ryw_ops(const std::vector<History::ClientOp>& ops,
                          ClientId client) {
  CheckResult res;
  std::uint64_t own_writes = 0;  // highest seq this client has written
  for (const History::ClientOp& op : ops) {
    ++res.events_checked;
    if (op.is_write) {
      own_writes = std::max(own_writes, op.write->wid.seq);
    } else if (op.read->store_clock.get(client) < own_writes) {
      res.fail("RYW: client " + std::to_string(client) + " read at store " +
               std::to_string(op.read->store) + " saw clock " +
               op.read->store_clock.str() + " missing its own write seq " +
               std::to_string(own_writes));
    }
  }
  return res;
}

CheckResult check_mr_ops(const std::vector<History::ClientOp>& ops,
                         ClientId client) {
  CheckResult res;
  VectorClock seen;
  for (const History::ClientOp& op : ops) {
    if (op.is_write) continue;
    ++res.events_checked;
    if (!op.read->store_clock.dominates(seen)) {
      res.fail("MR: client " + std::to_string(client) + " read at store " +
               std::to_string(op.read->store) + " saw clock " +
               op.read->store_clock.str() +
               " which does not dominate earlier read clock " + seen.str());
    }
    seen.merge(op.read->store_clock);
  }
  return res;
}

}  // namespace

// The per-guarantee entry points are one-spec sweeps: a single
// implementation (check_sessions) serves both the per-client API and
// the all-clients pass, so they cannot diverge.

CheckResult check_monotonic_writes(const History& h, ClientId client) {
  return check_sessions(h, {SessionSpec{client, ClientModel::kMonotonicWrites}})
      .front();
}

CheckResult check_read_your_writes(const History& h, ClientId client) {
  return check_ryw_ops(h.client_ops(client), client);
}

CheckResult check_monotonic_reads(const History& h, ClientId client) {
  return check_mr_ops(h.client_ops(client), client);
}

CheckResult check_writes_follow_reads(const History& h, ClientId client) {
  return check_sessions(h,
                        {SessionSpec{client, ClientModel::kWritesFollowReads}})
      .front();
}

std::vector<CheckResult> check_sessions(
    const History& h, const std::vector<SessionSpec>& specs) {
  // Per-guarantee partial results, merged per spec at the end in the
  // same MW, RYW, MR, WFR order the per-client checker used — the
  // verdicts (including violation order and events_checked) are
  // identical to running each client separately.
  std::vector<CheckResult> mw(specs.size()), ryw(specs.size()),
      mr(specs.size()), wfr(specs.size());

  std::unordered_map<ClientId, std::size_t> mw_slot;   // client -> spec
  std::unordered_map<ClientId, std::size_t> wfr_slot;  // client -> spec
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (has(specs[i].models, ClientModel::kMonotonicWrites)) {
      mw_slot.emplace(specs[i].client, i);
    }
    if (has(specs[i].models, ClientModel::kWritesFollowReads)) {
      wfr_slot.emplace(specs[i].client, i);
    }
  }

  // Monotonic writes: one walk per store's apply log covering every
  // flagged client (the seed walked it once per client).
  if (!mw_slot.empty()) {
    for (StoreId store : h.stores()) {
      std::unordered_map<ClientId, std::uint64_t> prev;
      for (const ApplyEvent* a : h.store_applies(store)) {
        if (a->from_snapshot) {
          for (const auto& [c, v] : a->deps.entries()) {
            if (mw_slot.find(c) == mw_slot.end()) continue;
            auto& cur = prev[c];
            cur = std::max(cur, v);
          }
          continue;
        }
        auto slot = mw_slot.find(a->wid.client);
        if (slot == mw_slot.end()) continue;
        CheckResult& res = mw[slot->second];
        ++res.events_checked;
        auto& cur = prev[a->wid.client];
        if (a->wid.seq <= cur) {
          res.fail("MW: store " + std::to_string(store) + " applied " +
                   a->wid.str() + " after seq " + std::to_string(cur));
        } else {
          cur = a->wid.seq;
        }
      }
    }
  }

  // Writes-follow-reads: the recorded-write map is built ONCE for all
  // clients, and each store's apply log is walked once with a single
  // running applied-clock (the seed rebuilt both per client).
  if (!wfr_slot.empty()) {
    std::unordered_map<WriteId, std::size_t> recorded;  // wid -> spec
    std::unordered_set<std::size_t> active;  // specs with >= 1 write
    for (const auto& w : h.writes()) {
      auto slot = wfr_slot.find(w.client);
      if (slot == wfr_slot.end()) continue;
      recorded.emplace(w.wid, slot->second);
      active.insert(slot->second);
    }
    if (!recorded.empty()) {
      std::size_t total_applies = 0;
      for (StoreId store : h.stores()) {
        VectorClock applied;
        const auto applies = h.store_applies(store);
        total_applies += applies.size();
        for (const ApplyEvent* a : applies) {
          if (a->from_snapshot) {
            applied.merge(a->deps);
            continue;
          }
          auto sel = recorded.find(a->wid);
          if (sel != recorded.end() && !applied.dominates(a->deps)) {
            wfr[sel->second].fail(
                "WFR: store " + std::to_string(store) + " applied " +
                a->wid.str() + " with deps " + a->deps.str() +
                " before those dependencies were applied (applied=" +
                applied.str() + ")");
          }
          applied.observe(a->wid);
        }
      }
      // The per-client checker counted every apply event it walked;
      // clients with no recorded writes short-circuited to zero.
      for (std::size_t i : active) wfr[i].events_checked = total_applies;
    }
  }

  // Read-path guarantees: O(ops of the client) each via the index; one
  // fetch serves both checks.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool want_ryw = has(specs[i].models, ClientModel::kReadYourWrites);
    const bool want_mr = has(specs[i].models, ClientModel::kMonotonicReads);
    if (!want_ryw && !want_mr) continue;
    const auto ops = h.client_ops(specs[i].client);
    if (want_ryw) ryw[i] = check_ryw_ops(ops, specs[i].client);
    if (want_mr) mr[i] = check_mr_ops(ops, specs[i].client);
  }

  std::vector<CheckResult> out(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out[i].merge(mw[i]);
    out[i].merge(ryw[i]);
    out[i].merge(mr[i]);
    out[i].merge(wfr[i]);
  }
  return out;
}

CheckResult check_client_models(const History& h, ClientId client,
                                ClientModel models) {
  return check_sessions(h, {SessionSpec{client, models}}).front();
}

}  // namespace globe::coherence
