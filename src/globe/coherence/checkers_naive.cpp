// Seed checker implementations, retained verbatim as the equivalence
// and cost baseline for the swept/indexed checkers (checkers.cpp).
// They answer every query through the History's full-scan views
// (`*_naive`), so a per-client check rescans the whole event log —
// O(clients × events) across a session sweep — exactly the seed cost
// that `bench_scale`'s `history` section measures against.
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "globe/coherence/checkers.hpp"
#include "globe/coherence/models.hpp"

namespace globe::coherence::naive {

namespace {

/// Shared core of the PRAM/FIFO checks: per store, per writer, applied
/// sequence numbers must be strictly increasing; when `contiguous`, every
/// write must be applied (no gaps).
CheckResult check_per_writer_order(const History& h, bool contiguous) {
  CheckResult res;
  for (StoreId store : h.stores_naive()) {
    std::unordered_map<ClientId, std::uint64_t> last_seq;
    for (const ApplyEvent* a : h.store_applies_naive(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        for (const auto& [c, v] : a->deps.entries()) {
          auto& cur = last_seq[c];
          cur = std::max(cur, v);
        }
        continue;
      }
      auto [it, inserted] = last_seq.try_emplace(a->wid.client, 0);
      const std::uint64_t prev = it->second;
      if (a->wid.seq <= prev) {
        res.fail("store " + std::to_string(store) + " applied " +
                 a->wid.str() + " after seq " + std::to_string(prev) +
                 " of the same writer (out of order)");
      } else if (contiguous && a->wid.seq != prev + 1) {
        res.fail("store " + std::to_string(store) + " applied " +
                 a->wid.str() + " with a gap (expected seq " +
                 std::to_string(prev + 1) + ")");
      }
      if (a->wid.seq > prev) it->second = a->wid.seq;
      (void)inserted;
    }
  }
  return res;
}

/// Verifies that apply order respects each write's dependency clock.
/// The seed rebuilt the write-event lookup on every call (and never
/// consulted it); kept as-is — this is the cost baseline.
CheckResult check_dependencies_respected(
    const History& h, const std::set<WriteId>& only_these_writes,
    const char* label) {
  CheckResult res;
  std::unordered_map<WriteId, const WriteEvent*> by_wid;
  for (const auto& w : h.writes()) by_wid[w.wid] = &w;

  for (StoreId store : h.stores_naive()) {
    VectorClock applied;
    for (const ApplyEvent* a : h.store_applies_naive(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        applied.merge(a->deps);
        continue;
      }
      const bool selected =
          only_these_writes.empty() || only_these_writes.count(a->wid) > 0;
      if (selected && !applied.dominates(a->deps)) {
        res.fail(std::string(label) + ": store " + std::to_string(store) +
                 " applied " + a->wid.str() + " with deps " + a->deps.str() +
                 " before those dependencies were applied (applied=" +
                 applied.str() + ")");
      }
      applied.observe(a->wid);
    }
  }
  return res;
}

}  // namespace

CheckResult check_pram(const History& h) {
  return check_per_writer_order(h, /*contiguous=*/true);
}

CheckResult check_fifo_pram(const History& h) {
  return check_per_writer_order(h, /*contiguous=*/false);
}

CheckResult check_causal(const History& h) {
  return check_dependencies_respected(h, {}, "causal");
}

CheckResult check_sequential(const History& h) {
  CheckResult res;

  // 1. One total order: each store applies strictly increasing,
  //    gap-free global sequence numbers mapping to unique writes.
  std::map<std::uint64_t, WriteId> order;  // global_seq -> wid
  for (StoreId store : h.stores_naive()) {
    std::uint64_t prev = 0;
    for (const ApplyEvent* a : h.store_applies_naive(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        prev = std::max(prev, a->global_seq);
        continue;
      }
      if (a->global_seq == 0) {
        res.fail("sequential: store " + std::to_string(store) + " applied " +
                 a->wid.str() + " without a global sequence number");
        continue;
      }
      if (a->global_seq != prev + 1) {
        res.fail("sequential: store " + std::to_string(store) +
                 " applied global seq " + std::to_string(a->global_seq) +
                 " after " + std::to_string(prev) +
                 " (total order broken)");
      }
      prev = a->global_seq;
      auto [it, inserted] = order.try_emplace(a->global_seq, a->wid);
      if (!inserted && it->second != a->wid) {
        res.fail("sequential: global seq " + std::to_string(a->global_seq) +
                 " maps to both " + it->second.str() + " and " +
                 a->wid.str());
      }
    }
  }

  // 2. The total order must respect each client's program order of writes.
  {
    std::unordered_map<ClientId, std::uint64_t> last_gseq;
    std::vector<const WriteEvent*> writes;
    for (const auto& w : h.writes()) writes.push_back(&w);
    std::sort(writes.begin(), writes.end(),
              [](const WriteEvent* a, const WriteEvent* b) {
                if (a->client != b->client) return a->client < b->client;
                return a->client_op_index < b->client_op_index;
              });
    for (const WriteEvent* w : writes) {
      ++res.events_checked;
      if (w->global_seq == 0) continue;  // flagged above via applies
      auto& prev = last_gseq[w->client];
      if (w->global_seq <= prev) {
        res.fail("sequential: client " + std::to_string(w->client) +
                 " write " + w->wid.str() +
                 " ordered before its earlier write in the total order");
      }
      prev = w->global_seq;
    }
  }

  // 3. Reads: per client, observed global seq is nondecreasing and at
  //    least the client's own last write.
  for (ClientId c : h.clients_naive()) {
    std::uint64_t floor = 0;
    for (const History::ClientOp& op : h.client_ops_naive(c)) {
      ++res.events_checked;
      if (op.is_write) {
        if (op.write->global_seq > floor) floor = op.write->global_seq;
      } else {
        if (op.read->store_global_seq < floor) {
          res.fail("sequential: client " + std::to_string(c) +
                   " read at store " + std::to_string(op.read->store) +
                   " observed global seq " +
                   std::to_string(op.read->store_global_seq) +
                   " older than its floor " + std::to_string(floor));
        } else {
          floor = op.read->store_global_seq;
        }
      }
    }
  }
  return res;
}

CheckResult check_eventual_delivery(const History& h) {
  CheckResult res;
  const auto stores = h.stores_naive();
  if (stores.empty()) return res;

  // After quiescence, every store's final applied write per page must
  // agree (full rationale in the indexed twin, checkers.cpp).
  std::map<StoreId, std::map<PageId, WriteId>> final_write;
  for (StoreId store : stores) {
    auto& per_page = final_write[store];
    for (const ApplyEvent* a : h.store_applies_naive(store)) {
      ++res.events_checked;
      if (a->from_snapshot) {
        per_page.clear();  // full-state transfer replaced everything
        continue;
      }
      per_page[a->page] = a->wid;  // later applies overwrite
    }
  }
  std::map<PageId, std::map<WriteId, std::vector<StoreId>>> by_page;
  for (const auto& [store, per_page] : final_write) {
    for (const auto& [page, wid] : per_page) {
      by_page[page][wid].push_back(store);
    }
  }
  for (const auto& [page, winners] : by_page) {
    if (winners.size() <= 1) continue;
    std::string what = "eventual: page '" + h.page_name(page) +
                       "' settled on different final writes:";
    for (const auto& [wid, who] : winners) {
      what += " " + wid.str() + "@stores{";
      for (std::size_t i = 0; i < who.size(); ++i) {
        what += (i != 0 ? "," : "") + std::to_string(who[i]);
      }
      what += "}";
    }
    res.fail(std::move(what));
  }
  return res;
}

CheckResult check_object_model(const History& h, ObjectModel model) {
  switch (model) {
    case ObjectModel::kSequential: return naive::check_sequential(h);
    case ObjectModel::kPram: return naive::check_pram(h);
    case ObjectModel::kFifoPram: return naive::check_fifo_pram(h);
    case ObjectModel::kCausal: return naive::check_causal(h);
    case ObjectModel::kEventual: return naive::check_eventual_delivery(h);
  }
  CheckResult res;
  res.fail("unknown object model");
  return res;
}

CheckResult check_monotonic_writes(const History& h, ClientId client) {
  CheckResult res;
  for (StoreId store : h.stores_naive()) {
    std::uint64_t prev = 0;
    for (const ApplyEvent* a : h.store_applies_naive(store)) {
      if (a->from_snapshot) {
        prev = std::max(prev, a->deps.get(client));
        continue;
      }
      if (a->wid.client != client) continue;
      ++res.events_checked;
      if (a->wid.seq <= prev) {
        res.fail("MW: store " + std::to_string(store) + " applied " +
                 a->wid.str() + " after seq " + std::to_string(prev));
      } else {
        prev = a->wid.seq;
      }
    }
  }
  return res;
}

CheckResult check_read_your_writes(const History& h, ClientId client) {
  CheckResult res;
  std::uint64_t own_writes = 0;  // highest seq this client has written
  for (const History::ClientOp& op : h.client_ops_naive(client)) {
    ++res.events_checked;
    if (op.is_write) {
      own_writes = std::max(own_writes, op.write->wid.seq);
    } else if (op.read->store_clock.get(client) < own_writes) {
      res.fail("RYW: client " + std::to_string(client) + " read at store " +
               std::to_string(op.read->store) + " saw clock " +
               op.read->store_clock.str() + " missing its own write seq " +
               std::to_string(own_writes));
    }
  }
  return res;
}

CheckResult check_monotonic_reads(const History& h, ClientId client) {
  CheckResult res;
  VectorClock seen;
  for (const History::ClientOp& op : h.client_ops_naive(client)) {
    if (op.is_write) continue;
    ++res.events_checked;
    if (!op.read->store_clock.dominates(seen)) {
      res.fail("MR: client " + std::to_string(client) + " read at store " +
               std::to_string(op.read->store) + " saw clock " +
               op.read->store_clock.str() +
               " which does not dominate earlier read clock " + seen.str());
    }
    seen.merge(op.read->store_clock);
  }
  return res;
}

CheckResult check_writes_follow_reads(const History& h, ClientId client) {
  std::set<WriteId> own;
  for (const auto& w : h.writes()) {
    if (w.client == client) own.insert(w.wid);
  }
  if (own.empty()) return {};
  return check_dependencies_respected(h, own, "WFR");
}

CheckResult check_client_models(const History& h, ClientId client,
                                ClientModel models) {
  CheckResult res;
  if (has(models, ClientModel::kMonotonicWrites)) {
    res.merge(naive::check_monotonic_writes(h, client));
  }
  if (has(models, ClientModel::kReadYourWrites)) {
    res.merge(naive::check_read_your_writes(h, client));
  }
  if (has(models, ClientModel::kMonotonicReads)) {
    res.merge(naive::check_monotonic_reads(h, client));
  }
  if (has(models, ClientModel::kWritesFollowReads)) {
    res.merge(naive::check_writes_follow_reads(h, client));
  }
  return res;
}

}  // namespace globe::coherence::naive
