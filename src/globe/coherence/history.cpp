#include "globe/coherence/history.hpp"

#include <algorithm>
#include <set>

#include "globe/coherence/streaming.hpp"

namespace globe::coherence {

PageId History::intern(std::string_view name) {
  if (name.empty()) return kNoPage;
  auto it = page_ids_.find(name);
  if (it != page_ids_.end()) return it->second;
  const auto id = static_cast<PageId>(page_names_.size());
  page_names_.emplace_back(name);
  page_ids_.emplace(page_names_.back(), id);
  if (streaming_ != nullptr) streaming_->note_page(id, page_names_.back());
  return id;
}

void History::attach_streaming(StreamingChecker* checker) {
  streaming_ = checker;
  if (streaming_ == nullptr) return;
  // Replay the intern table so diagnostics for pages interned before the
  // attach render by name, not "#id".
  for (PageId id = 1; id < page_names_.size(); ++id) {
    streaming_->note_page(id, page_names_[id]);
  }
}

std::size_t History::note_horizon(const VectorClock& clock,
                                  std::uint64_t gseq) {
  if (streaming_ == nullptr) return 0;
  return streaming_->advance_horizon(clock, gseq);
}

std::string History::page_name(PageId id) const {
  if (id < page_names_.size()) return page_names_[id];
  return "#" + std::to_string(id);
}

void History::note_client_op(ClientId client, std::uint64_t op_index,
                             OpRef ref) {
  ClientIndex& idx = by_client_[client];
  // Strictly increasing indexes (the ClientBinding recorder always
  // produces them) mean record order IS program order with no ties, so
  // client_ops() can skip its sort. Equal or regressing indexes drop to
  // the sorting path, which also resolves tie ordering.
  if (idx.ops.empty() || op_index > idx.last_index) {
    idx.last_index = op_index;
  } else {
    idx.in_order = false;
  }
  idx.ops.push_back(ref);
}

void History::record_write(WriteEvent e) {
  if (streaming_ != nullptr) streaming_->record_write(e);
  if (!retain_events_) return;
  const auto pos = static_cast<std::uint32_t>(writes_.size());
  if (indexed_) {
    note_client_op(e.client, e.client_op_index, OpRef{pos, true});
  }
  writes_.push_back(std::move(e));
}

void History::record_read(ReadEvent e) {
  if (streaming_ != nullptr) streaming_->record_read(e);
  if (!retain_events_) return;
  const auto pos = static_cast<std::uint32_t>(reads_.size());
  if (indexed_) {
    note_client_op(e.client, e.client_op_index, OpRef{pos, false});
  }
  reads_.push_back(std::move(e));
}

void History::record_apply(ApplyEvent e) {
  if (streaming_ != nullptr) streaming_->record_apply(e);
  if (!retain_events_) return;
  if (indexed_) {
    by_store_[e.store].push_back(static_cast<std::uint32_t>(applies_.size()));
  }
  applies_.push_back(std::move(e));
}

void History::clear() {
  writes_.clear();
  reads_.clear();
  applies_.clear();
  by_client_.clear();
  by_store_.clear();
  page_ids_.clear();
  page_names_.assign(1, std::string());
  // A reused recorder must behave exactly like a fresh one: the intern
  // table restarts at id 1, so the attached checker's mirror (and all
  // its event state) has to restart with it.
  if (streaming_ != nullptr) streaming_->reset();
}

// Deterministic program order: by client_op_index; operations sharing an
// index put writes before reads, ties within a kind keep record order
// (stable sort). Both the indexed and the naive assembly feed this.
void History::sort_ops(std::vector<ClientOp>& ops) {
  std::stable_sort(ops.begin(), ops.end(),
                   [](const ClientOp& a, const ClientOp& b) {
                     if (a.index() != b.index()) return a.index() < b.index();
                     return a.is_write && !b.is_write;
                   });
}

std::vector<History::ClientOp> History::client_ops(ClientId client) const {
  if (!indexed_) return client_ops_naive(client);
  std::vector<ClientOp> ops;
  auto it = by_client_.find(client);
  if (it == by_client_.end()) return ops;
  ops.reserve(it->second.ops.size());
  for (const OpRef& ref : it->second.ops) {
    if (ref.is_write) {
      ops.push_back(ClientOp{true, &writes_[ref.pos], nullptr});
    } else {
      ops.push_back(ClientOp{false, nullptr, &reads_[ref.pos]});
    }
  }
  if (!it->second.in_order) sort_ops(ops);
  return ops;
}

std::vector<const ApplyEvent*> History::store_applies(StoreId store) const {
  if (!indexed_) return store_applies_naive(store);
  std::vector<const ApplyEvent*> out;
  auto it = by_store_.find(store);
  if (it == by_store_.end()) return out;
  out.reserve(it->second.size());
  // The index is appended at record time, so it is already in
  // application (recording) order.
  for (std::uint32_t pos : it->second) out.push_back(&applies_[pos]);
  return out;
}

std::vector<StoreId> History::stores() const {
  if (!indexed_) return stores_naive();
  std::vector<StoreId> ids;
  ids.reserve(by_store_.size());
  for (const auto& [id, _] : by_store_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<ClientId> History::clients() const {
  if (!indexed_) return clients_naive();
  std::vector<ClientId> ids;
  ids.reserve(by_client_.size());
  for (const auto& [id, _] : by_client_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// -- Seed behaviour: full scans -----------------------------------------

std::vector<History::ClientOp> History::client_ops_naive(
    ClientId client) const {
  std::vector<ClientOp> ops;
  for (const auto& w : writes_) {
    if (w.client == client) ops.push_back(ClientOp{true, &w, nullptr});
  }
  for (const auto& r : reads_) {
    if (r.client == client) ops.push_back(ClientOp{false, nullptr, &r});
  }
  sort_ops(ops);
  return ops;
}

std::vector<const ApplyEvent*> History::store_applies_naive(
    StoreId store) const {
  std::vector<const ApplyEvent*> out;
  for (const auto& a : applies_) {
    if (a.store == store) out.push_back(&a);
  }
  // applies_ is already in application (recording) order.
  return out;
}

std::vector<StoreId> History::stores_naive() const {
  std::set<StoreId> ids;
  for (const auto& a : applies_) ids.insert(a.store);
  return {ids.begin(), ids.end()};
}

std::vector<ClientId> History::clients_naive() const {
  std::set<ClientId> ids;
  for (const auto& w : writes_) ids.insert(w.client);
  for (const auto& r : reads_) ids.insert(r.client);
  return {ids.begin(), ids.end()};
}

}  // namespace globe::coherence
