#include "globe/coherence/history.hpp"

#include <algorithm>
#include <set>

namespace globe::coherence {

std::vector<History::ClientOp> History::client_ops(ClientId client) const {
  std::vector<ClientOp> ops;
  for (const auto& w : writes_) {
    if (w.client == client) ops.push_back(ClientOp{true, &w, nullptr});
  }
  for (const auto& r : reads_) {
    if (r.client == client) ops.push_back(ClientOp{false, nullptr, &r});
  }
  std::sort(ops.begin(), ops.end(),
            [](const ClientOp& a, const ClientOp& b) {
              return a.index() < b.index();
            });
  return ops;
}

std::vector<const ApplyEvent*> History::store_applies(StoreId store) const {
  std::vector<const ApplyEvent*> out;
  for (const auto& a : applies_) {
    if (a.store == store) out.push_back(&a);
  }
  // applies_ is already in application (recording) order.
  return out;
}

std::vector<StoreId> History::stores() const {
  std::set<StoreId> ids;
  for (const auto& a : applies_) ids.insert(a.store);
  return {ids.begin(), ids.end()};
}

std::vector<ClientId> History::clients() const {
  std::set<ClientId> ids;
  for (const auto& w : writes_) ids.insert(w.client);
  for (const auto& r : reads_) ids.insert(r.client);
  return {ids.begin(), ids.end()};
}

}  // namespace globe::coherence
