// Coherence model definitions (Sections 3.2.1 and 3.2.2 of the paper).
#pragma once

#include <cstdint>
#include <string>

namespace globe::coherence {

/// Object-based coherence models: the consistency an object offers to its
/// whole set of clients (Section 3.2.1).
enum class ObjectModel : std::uint8_t {
  /// Global total ordering of operations (Lamport 1979).
  kSequential = 0,
  /// Writes by a given client appear everywhere in issue order
  /// (Lipton & Sandberg 1988).
  kPram = 1,
  /// FIFO optimisation of PRAM: a write is honored only if it is more
  /// recent than the latest write from the same client; stale writes are
  /// ignored. Better when clients overwrite rather than update
  /// incrementally.
  kFifoPram = 2,
  /// Ordering guaranteed only between causally related operations
  /// (Hutto & Ahamad 1990).
  kCausal = 3,
  /// Updates eventually propagate; no ordering constraints.
  kEventual = 4,
};

[[nodiscard]] const char* to_string(ObjectModel m);

/// Client-based coherence models (Section 3.2.2); these are the Bayou
/// session guarantees, but *guaranteed* by the stores rather than merely
/// checked. They may be combined, so they form a bitmask.
enum class ClientModel : std::uint8_t {
  kNone = 0,
  /// Client-PRAM / Monotonic Writes: this client's writes appear on every
  /// store in issue order.
  kMonotonicWrites = 1 << 0,
  /// Read Your Writes: effects of every write by the client are visible
  /// to all of its subsequent reads.
  kReadYourWrites = 1 << 1,
  /// Monotonic Reads: a later read (possibly at a different store) sees a
  /// state at least as new as any earlier read.
  kMonotonicReads = 1 << 2,
  /// Client-causal / Writes Follow Reads: the client's writes are ordered
  /// after the writes it had observed.
  kWritesFollowReads = 1 << 3,
};

[[nodiscard]] constexpr ClientModel operator|(ClientModel a, ClientModel b) {
  return static_cast<ClientModel>(static_cast<std::uint8_t>(a) |
                                  static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr bool has(ClientModel set, ClientModel flag) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(flag)) !=
         0;
}

[[nodiscard]] std::string to_string(ClientModel m);

/// True when the object-based model already subsumes the client-based one
/// (Section 3.2.2: "if the object offers sequential consistency, then it
/// automatically offers every client-based model as well").
[[nodiscard]] bool subsumes(ObjectModel object, ClientModel client);

}  // namespace globe::coherence
