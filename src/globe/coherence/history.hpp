// Operation histories.
//
// When a History recorder is attached to the runtime, every client
// operation and every store-level write application is recorded. The
// checkers (checkers.hpp) then verify that a recorded execution satisfies
// the coherence model the object was configured with. This is how the
// test suite demonstrates — rather than assumes — that each replication
// strategy implements its advertised model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "globe/coherence/vector_clock.hpp"
#include "globe/coherence/write_id.hpp"
#include "globe/util/ids.hpp"
#include "globe/util/time.hpp"

namespace globe::coherence {

using util::SimTime;

/// A client completed a write (it was accepted by the store it is bound
/// to, or by the primary on its behalf).
struct WriteEvent {
  SimTime at{};
  std::uint64_t client_op_index = 0;  // program order within the client
  ClientId client = 0;
  StoreId via_store = kInvalidStore;  // store that accepted the write
  WriteId wid;
  std::string page;
  VectorClock deps;          // causal/session dependencies carried
  std::uint64_t global_seq = 0;  // primary-assigned total order (0 if none)
};

/// A client completed a read.
struct ReadEvent {
  SimTime at{};
  std::uint64_t client_op_index = 0;
  ClientId client = 0;
  StoreId store = kInvalidStore;  // store that served the read
  std::string page;
  WriteId observed;               // writer of the returned content
  VectorClock store_clock;        // serving store's applied clock
  std::uint64_t store_global_seq = 0;
};

/// A store applied a write record to its replica — or, when
/// `from_snapshot` is set, initialized/replaced its state from a
/// full-state transfer. Snapshot events carry the snapshot's clock in
/// `deps` and its total-order position in `global_seq`; checkers fold
/// them into the store's applied state so that replicas joining late
/// (Subscribe -> SubscribeAck) are judged from their true baseline.
struct ApplyEvent {
  SimTime at{};
  StoreId store = kInvalidStore;
  WriteId wid;
  std::string page;
  VectorClock deps;
  std::uint64_t global_seq = 0;
  bool from_snapshot = false;
};

class History {
 public:
  void record_write(WriteEvent e) { writes_.push_back(std::move(e)); }
  void record_read(ReadEvent e) { reads_.push_back(std::move(e)); }
  void record_apply(ApplyEvent e) { applies_.push_back(std::move(e)); }

  [[nodiscard]] const std::vector<WriteEvent>& writes() const {
    return writes_;
  }
  [[nodiscard]] const std::vector<ReadEvent>& reads() const { return reads_; }
  [[nodiscard]] const std::vector<ApplyEvent>& applies() const {
    return applies_;
  }

  [[nodiscard]] std::size_t size() const {
    return writes_.size() + reads_.size() + applies_.size();
  }

  void clear() {
    writes_.clear();
    reads_.clear();
    applies_.clear();
  }

  /// All client operations (reads and writes) of `client`, in program
  /// order (by client_op_index).
  struct ClientOp {
    bool is_write = false;
    const WriteEvent* write = nullptr;
    const ReadEvent* read = nullptr;
    [[nodiscard]] std::uint64_t index() const {
      return is_write ? write->client_op_index : read->client_op_index;
    }
  };
  [[nodiscard]] std::vector<ClientOp> client_ops(ClientId client) const;

  /// Apply events of a given store, in application order.
  [[nodiscard]] std::vector<const ApplyEvent*> store_applies(
      StoreId store) const;

  /// The set of store ids that applied at least one write.
  [[nodiscard]] std::vector<StoreId> stores() const;

  /// The set of clients that performed at least one operation.
  [[nodiscard]] std::vector<ClientId> clients() const;

 private:
  std::vector<WriteEvent> writes_;
  std::vector<ReadEvent> reads_;
  std::vector<ApplyEvent> applies_;
};

}  // namespace globe::coherence
