// Operation histories.
//
// When a History recorder is attached to the runtime, every client
// operation and every store-level write application is recorded. The
// checkers (checkers.hpp) then verify that a recorded execution satisfies
// the coherence model the object was configured with. This is how the
// test suite demonstrates — rather than assumes — that each replication
// strategy implements its advertised model.
//
// Scale: recording is on the hot path of every simulated operation, so
// events carry an interned PageId (one shared string table per History)
// instead of a std::string per event, and per-client / per-store index
// vectors are maintained incrementally at record time. `client_ops()`
// and `store_applies()` assemble their results from those indexes in
// O(result) instead of rescanning the whole event log. The seed's
// full-scan implementations are retained as `*_naive()` (and as the
// behaviour of a History constructed with indexed=false) so that
// checker-equivalence tests and benchmarks can prove the indexed path
// returns identical views.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "globe/coherence/vector_clock.hpp"
#include "globe/coherence/write_id.hpp"
#include "globe/util/ids.hpp"
#include "globe/util/time.hpp"

namespace globe::coherence {

class StreamingChecker;

using util::SimTime;

/// Interned page name. Id 0 (`kNoPage`) is the empty name, used by
/// events that carry no page (e.g. snapshot applies).
using PageId = std::uint32_t;
inline constexpr PageId kNoPage = 0;

/// A client completed a write (it was accepted by the store it is bound
/// to, or by the primary on its behalf).
struct WriteEvent {
  SimTime at{};
  std::uint64_t client_op_index = 0;  // program order within the client
  ClientId client = 0;
  StoreId via_store = kInvalidStore;  // store that accepted the write
  WriteId wid;
  PageId page = kNoPage;
  VectorClock deps;          // causal/session dependencies carried
  std::uint64_t global_seq = 0;  // primary-assigned total order (0 if none)
};

/// A client completed a read.
struct ReadEvent {
  SimTime at{};
  std::uint64_t client_op_index = 0;
  ClientId client = 0;
  StoreId store = kInvalidStore;  // store that served the read
  PageId page = kNoPage;
  WriteId observed;               // writer of the returned content
  VectorClock store_clock;        // serving store's applied clock
  std::uint64_t store_global_seq = 0;
};

/// A store applied a write record to its replica — or, when
/// `from_snapshot` is set, initialized/replaced its state from a
/// full-state transfer. Snapshot events carry the snapshot's clock in
/// `deps` and its total-order position in `global_seq`; checkers fold
/// them into the store's applied state so that replicas joining late
/// (Subscribe -> SubscribeAck) are judged from their true baseline.
struct ApplyEvent {
  SimTime at{};
  StoreId store = kInvalidStore;
  WriteId wid;
  PageId page = kNoPage;
  VectorClock deps;
  std::uint64_t global_seq = 0;
  bool from_snapshot = false;
};

class History {
 public:
  History() = default;
  /// indexed=false reproduces the seed recorder: plain event appends,
  /// all queries answered by full scans. Used as the benchmark baseline.
  explicit History(bool indexed) : indexed_(indexed) {}

  /// Interns `name`, returning its stable PageId. The empty name is
  /// always `kNoPage`.
  PageId intern(std::string_view name);

  /// Resolves an interned id back to its name ("#<id>" for ids this
  /// History never handed out, so diagnostics on hand-built events
  /// still render).
  [[nodiscard]] std::string page_name(PageId id) const;

  [[nodiscard]] std::size_t pages_interned() const {
    return page_names_.size();
  }

  void record_write(WriteEvent e);
  void record_read(ReadEvent e);
  void record_apply(ApplyEvent e);

  /// Attaches a streaming checker that is fed every event as it is
  /// recorded (plus the already-interned page table on attach, so late
  /// attachment renders diagnostics identically). Pass nullptr to
  /// detach. The checker must outlive the History or be detached first;
  /// clear() resets it alongside the event log.
  void attach_streaming(StreamingChecker* checker);
  [[nodiscard]] StreamingChecker* streaming() const { return streaming_; }

  /// With retention off, events are teed to the attached streaming
  /// checker but NOT stored: recording becomes O(1) memory and the
  /// post-hoc views (writes()/client_ops()/...) stay empty. This is the
  /// bounded-memory soak mode; leave retention on when a post-hoc
  /// checker or convergence comparison still needs the full log.
  void set_retain_events(bool retain) { retain_events_ = retain; }
  [[nodiscard]] bool retain_events() const { return retain_events_; }

  /// Forwards a cluster stability horizon to the attached streaming
  /// checker (no-op without one); returns how many retained entries the
  /// checker retired.
  std::size_t note_horizon(const VectorClock& clock, std::uint64_t gseq);

  [[nodiscard]] const std::vector<WriteEvent>& writes() const {
    return writes_;
  }
  [[nodiscard]] const std::vector<ReadEvent>& reads() const { return reads_; }
  [[nodiscard]] const std::vector<ApplyEvent>& applies() const {
    return applies_;
  }

  [[nodiscard]] std::size_t size() const {
    return writes_.size() + reads_.size() + applies_.size();
  }

  [[nodiscard]] bool indexed() const { return indexed_; }

  void clear();

  /// All client operations (reads and writes) of `client`, in program
  /// order (by client_op_index). Ordering is deterministic: operations
  /// sharing an index are ordered writes first, then record order
  /// (stable sort) — the indexed and naive paths agree exactly.
  struct ClientOp {
    bool is_write = false;
    const WriteEvent* write = nullptr;
    const ReadEvent* read = nullptr;
    [[nodiscard]] std::uint64_t index() const {
      return is_write ? write->client_op_index : read->client_op_index;
    }
  };
  [[nodiscard]] std::vector<ClientOp> client_ops(ClientId client) const;

  /// Apply events of a given store, in application order.
  [[nodiscard]] std::vector<const ApplyEvent*> store_applies(
      StoreId store) const;

  /// The set of store ids that applied at least one write.
  [[nodiscard]] std::vector<StoreId> stores() const;

  /// The set of clients that performed at least one operation.
  [[nodiscard]] std::vector<ClientId> clients() const;

  // -- Seed behaviour (full scans), kept as the equivalence baseline --

  [[nodiscard]] std::vector<ClientOp> client_ops_naive(ClientId client) const;
  [[nodiscard]] std::vector<const ApplyEvent*> store_applies_naive(
      StoreId store) const;
  [[nodiscard]] std::vector<StoreId> stores_naive() const;
  [[nodiscard]] std::vector<ClientId> clients_naive() const;

 private:
  // Index entry: position within writes_ (is_write) or reads_.
  struct OpRef {
    std::uint32_t pos = 0;
    bool is_write = false;
  };
  struct ClientIndex {
    std::vector<OpRef> ops;  // record order
    // True while client_op_index arrives strictly increasing — then
    // record order is program order and client_ops() skips its sort.
    bool in_order = true;
    std::uint64_t last_index = 0;
  };

  void note_client_op(ClientId client, std::uint64_t op_index, OpRef ref);
  static void sort_ops(std::vector<ClientOp>& ops);

  bool indexed_ = true;
  bool retain_events_ = true;
  StreamingChecker* streaming_ = nullptr;
  std::vector<WriteEvent> writes_;
  std::vector<ReadEvent> reads_;
  std::vector<ApplyEvent> applies_;

  std::unordered_map<ClientId, ClientIndex> by_client_;
  std::unordered_map<StoreId, std::vector<std::uint32_t>> by_store_;

  // Transparent hashing: intern() is on the record hot path and must
  // not allocate a temporary std::string per lookup.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, PageId, StringHash, std::equal_to<>>
      page_ids_;
  std::vector<std::string> page_names_{std::string()};  // [kNoPage] = ""
};

}  // namespace globe::coherence
