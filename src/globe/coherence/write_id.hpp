// Write identifiers.
//
// Section 4.2 of the paper: "a unique write identifier (WiD) is assigned
// to each new write, composed of the client's identifier and a sequence
// number". WiDs are the unit of ordering for PRAM/FIFO coherence and of
// dependency tracking for the client-based (session) models.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "globe/util/buffer.hpp"
#include "globe/util/ids.hpp"

namespace globe::coherence {

struct WriteId {
  ClientId client = 0;
  std::uint64_t seq = 0;  // 0 means "no write" / unset

  friend bool operator==(const WriteId&, const WriteId&) = default;
  friend auto operator<=>(const WriteId&, const WriteId&) = default;

  [[nodiscard]] bool valid() const { return seq != 0; }

  [[nodiscard]] std::string str() const {
    return "w(" + std::to_string(client) + "," + std::to_string(seq) + ")";
  }

  void encode(util::Writer& w) const {
    w.u32(client);
    w.u64(seq);
  }

  static WriteId decode(util::Reader& r) {
    WriteId wid;
    wid.client = r.u32();
    wid.seq = r.u64();
    return wid;
  }
};

inline constexpr WriteId kNoWrite{};

/// A client-side dependency: "my read/write depends on this write, which
/// I performed or observed at this store" (Section 4.2: dependency
/// <WiD, store id> is transmitted with a read request).
struct Dependency {
  WriteId wid;
  StoreId store = kInvalidStore;

  friend bool operator==(const Dependency&, const Dependency&) = default;

  void encode(util::Writer& w) const {
    wid.encode(w);
    w.u32(store);
  }

  static Dependency decode(util::Reader& r) {
    Dependency d;
    d.wid = WriteId::decode(r);
    d.store = r.u32();
    return d;
  }
};

}  // namespace globe::coherence

template <>
struct std::hash<globe::coherence::WriteId> {
  std::size_t operator()(const globe::coherence::WriteId& w) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(w.client) << 40) ^ w.seq);
  }
};
