// Streaming (check-as-you-record) coherence verification.
//
// The post-hoc checkers (checkers.hpp) walk a fully retained History at
// the end of a run, which makes verification memory O(run length) and
// caps how long a scenario can be. A StreamingChecker verifies the same
// properties incrementally as events are recorded: every check that only
// needs running state (per-writer sequence floors, per-store applied
// clocks, session read floors) is evaluated at the violating event, and
// the few facts that genuinely need cross-event context are retained in
// small side buffers that a cluster-wide *stability horizon*
// (advance_horizon) retires as the run progresses. Retained-event memory
// is therefore bounded by the horizon lag, not the run length — the
// high-watermark counter proves it.
//
// Verdict equivalence: model_result() / session_results() assemble
// CheckResults that are byte-identical — violation strings, order, and
// events_checked — to check_object_model() / check_sessions() over the
// same event stream, which the equivalence suite and the bench soak
// section gate against the retained post-hoc checkers. The indexed and
// naive post-hoc checkers themselves are untouched.
//
// What must be retained, and why:
//   * sequential, total-order agreement: which WriteId each global seq
//     maps to is claimed by applies at different stores at different
//     times; claims are kept per gseq and resolved at assembly. The
//     horizon retires unanimous claims below its gseq floor (a
//     post-retirement conflicting claim would still trip the per-store
//     strict-monotonicity check).
//   * writes-follow-reads: a store can apply a write before the
//     accepting client's ack is recorded, so applies of a flagged
//     client's not-yet-recorded writes pend (with the applied-clock they
//     were checked against) until the write event arrives. The horizon
//     drops pending entries whose write is covered cluster-wide.
//   * per-client op summaries: program order is normally record order
//     (strictly increasing op indexes — the ClientBinding recorder
//     guarantees it); compact summaries are buffered so that a client
//     that falls out of order can be re-checked in sorted order at
//     assembly, exactly like History::client_ops(). The horizon retires
//     the processed in-order prefix. Re-checks that need read clocks
//     (RYW/MR) are only exact with Options::buffer_clocks; without it an
//     out-of-order RYW/MR client marks the checker inexact (exact()).
//
// Sessions must be registered (add_session) before the client's first
// event; events of unregistered clients are checked against the object
// model only, matching check_sessions' spec semantics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "globe/coherence/checkers.hpp"
#include "globe/coherence/history.hpp"
#include "globe/coherence/models.hpp"
#include "globe/coherence/vector_clock.hpp"
#include "globe/util/ids.hpp"

namespace globe::coherence {

class StreamingChecker {
 public:
  struct Options {
    /// Buffer read store-clocks so RYW/MR stay exact even for clients
    /// whose op indexes arrive out of program order (hand-built
    /// histories). Recorded runs are always in order, so the default
    /// keeps the hot path free of per-read clock copies.
    bool buffer_clocks = false;
  };

  explicit StreamingChecker(ObjectModel model)
      : StreamingChecker(model, Options{}) {}
  StreamingChecker(ObjectModel model, Options options)
      : model_(model), options_(options) {}

  /// Registers one client's session guarantees (at most one spec per
  /// client, before that client's first event).
  void add_session(const SessionSpec& spec);

  /// Mirrors the History's intern table so assembled diagnostics render
  /// page names identically.
  void note_page(PageId id, std::string_view name);

  void record_write(const WriteEvent& e);
  void record_read(const ReadEvent& e);
  void record_apply(const ApplyEvent& e);

  /// Advances the cluster-wide stability horizon (monotonic: regressions
  /// are ignored entry-wise) and retires every buffered fact it
  /// discharges. Returns the number of retained entries retired.
  std::size_t advance_horizon(const VectorClock& clock, std::uint64_t gseq);

  /// Drops all event-derived state (pages, buffers, horizon, counters)
  /// but keeps the model and registered sessions — the History::clear()
  /// companion.
  void reset();

  /// Assembles the object-model verdict over everything recorded so far;
  /// identical to check_object_model() on the same stream.
  [[nodiscard]] CheckResult model_result() const;

  /// Assembles per-spec session verdicts in registration order;
  /// identical to check_sessions() with the same specs.
  [[nodiscard]] std::vector<CheckResult> session_results() const;

  /// Violations detected eagerly so far (at the violating event). For
  /// in-order clients this matches the assembled totals; assembly-time
  /// resolutions (total-order claim conflicts) are not included.
  [[nodiscard]] std::size_t violations_so_far() const { return eager_violations_; }

  /// Currently buffered retained entries (claims, pending WFR applies,
  /// client op summaries) and the run's high watermark.
  [[nodiscard]] std::size_t retained_events() const { return retained_; }
  [[nodiscard]] std::size_t retained_high_watermark() const {
    return retained_hwm_;
  }
  [[nodiscard]] std::uint64_t events_retired() const { return events_retired_; }
  [[nodiscard]] std::uint64_t horizon_advances() const {
    return horizon_advances_;
  }

  /// False when an out-of-order client forced a re-check the buffers
  /// could not reproduce exactly (see Options::buffer_clocks).
  [[nodiscard]] bool exact() const { return exact_; }

  [[nodiscard]] ObjectModel model() const { return model_; }
  [[nodiscard]] const std::vector<SessionSpec>& sessions() const {
    return specs_;
  }
  [[nodiscard]] const VectorClock& horizon() const { return horizon_; }
  [[nodiscard]] std::uint64_t horizon_gseq() const { return horizon_gseq_; }

 private:
  // A violation pinned to its position in the post-hoc walk order:
  // (store ascending, per-store apply index, intra-apply emit order).
  struct KeyedViolation {
    StoreId store = 0;
    std::uint64_t idx = 0;
    int sub = 0;
    std::string what;
  };
  static void sort_keyed(std::vector<KeyedViolation>& v);

  // Per-store running model state (created on the store's first apply,
  // so the key set equals History::stores()).
  struct StoreState {
    std::uint64_t apply_count = 0;  // per-store apply index
    // PRAM / FIFO-PRAM: per-writer applied floors.
    std::unordered_map<ClientId, std::uint64_t> writer_seq;
    // Causal: the store's running applied clock.
    VectorClock applied;
    // Sequential part 1: previous global seq.
    std::uint64_t prev_gseq = 0;
    // Eventual: final applied write per page (cleared by snapshots).
    std::map<PageId, WriteId> final_write;
    // Monotonic writes: per flagged-client applied floors.
    std::unordered_map<ClientId, std::uint64_t> mw_prev;
    // Writes-follow-reads: the store's running applied clock (kept
    // separate from `applied` so the model and session checks stay
    // independent).
    VectorClock wfr_applied;
    // Eagerly detected model violations, in apply order. Sequential
    // stores keyed entries (assembly interleaves claim conflicts).
    std::vector<std::string> model_violations;
    std::vector<KeyedViolation> seq_violations;
  };

  // Sequential total order: every (store, apply) that claimed a gseq.
  struct SeqClaim {
    StoreId store = 0;
    std::uint64_t idx = 0;
    WriteId wid;
  };

  // Writes-follow-reads apply seen before its write event.
  struct PendingWfr {
    StoreId store = 0;
    std::uint64_t idx = 0;
    VectorClock deps;
    VectorClock applied_before;
  };

  // Compact client op summary for the out-of-order re-check path.
  struct OpSum {
    std::uint64_t op_index = 0;
    bool is_write = false;
    WriteId wid;              // writes
    std::uint64_t gseq = 0;   // write global_seq / read store_global_seq
    StoreId store = 0;        // reads
    VectorClock store_clock;  // reads, Options::buffer_clocks only
  };

  struct ClientState {
    // Program-order bookkeeping, mirroring History::ClientIndex.
    bool in_order = true;
    bool has_ops = false;
    std::uint64_t last_index = 0;
    // Buffered summaries since the last horizon seal (record order).
    std::vector<OpSum> buffer;
    bool sealed = false;  // a horizon retired a processed prefix

    // Eager per-client state and results.
    std::size_t op_count = 0;    // RYW events_checked / seq part 3
    std::size_t read_count = 0;  // MR events_checked
    std::size_t write_count = 0;  // seq part 2 events_checked
    std::uint64_t own_writes = 0;       // RYW floor
    VectorClock seen;                   // MR floor
    std::uint64_t seq_floor = 0;        // sequential part 3 floor
    std::uint64_t last_gseq = 0;        // sequential part 2 floor
    std::vector<std::string> ryw_violations;
    std::vector<std::string> mr_violations;
    std::vector<std::string> seq_read_violations;   // part 3
    std::vector<std::string> seq_write_violations;  // part 2

    // Snapshot of the eager state at the seal point, seeding a re-check
    // of the retained suffix if the client later falls out of order.
    std::uint64_t seal_own_writes = 0;
    VectorClock seal_seen;
    std::uint64_t seal_seq_floor = 0;
    std::uint64_t seal_last_gseq = 0;
    std::size_t seal_ryw = 0, seal_mr = 0, seal_seq_read = 0,
                seal_seq_write = 0;  // violation prefix lengths
  };

  void note_op_order(ClientState& c, ClientId client, std::uint64_t op_index);
  void check_client_read(ClientState& c, ClientId client, const OpSum& op,
                         const VectorClock& store_clock);
  void check_client_write(ClientState& c, ClientId client, const OpSum& op);
  [[nodiscard]] bool wants_client_ops(ClientId client) const;
  [[nodiscard]] std::string page_name(PageId id) const;
  void retain(std::size_t n);

  // Re-checks an out-of-order client from its seal seeds over the
  // stable-sorted buffer, producing post-hoc-ordered results.
  struct ClientVerdicts {
    std::vector<std::string> ryw, mr, seq_read, seq_write;
    std::size_t op_count = 0, read_count = 0, write_count = 0;
  };
  [[nodiscard]] ClientVerdicts client_verdicts(ClientId client) const;

  ObjectModel model_;
  Options options_;
  std::vector<SessionSpec> specs_;
  std::unordered_map<ClientId, std::size_t> mw_slot_;
  std::unordered_map<ClientId, std::size_t> ryw_slot_;
  std::unordered_map<ClientId, std::size_t> mr_slot_;
  std::unordered_map<ClientId, std::size_t> wfr_slot_;

  std::vector<std::string> page_names_{std::string()};

  std::map<StoreId, StoreState> stores_;
  std::unordered_map<ClientId, ClientState> clients_;

  // Sequential total order claims: gseq -> claiming applies.
  std::map<std::uint64_t, std::vector<SeqClaim>> seq_claims_;

  // WFR: flagged clients' recorded writes, actives, pending applies.
  std::unordered_map<WriteId, std::size_t> wfr_recorded_;  // wid -> spec
  std::unordered_set<std::size_t> wfr_active_;
  std::unordered_map<WriteId, std::vector<PendingWfr>> wfr_pending_;
  std::size_t total_applies_ = 0;

  // Eager per-spec session results (violations keyed for assembly).
  std::vector<std::vector<KeyedViolation>> mw_violations_;   // per spec
  std::vector<std::vector<KeyedViolation>> wfr_violations_;  // per spec
  std::vector<std::size_t> mw_checked_;                      // per spec

  std::size_t model_checked_ = 0;  // applies walked by the model check

  VectorClock horizon_;
  std::uint64_t horizon_gseq_ = 0;
  std::uint64_t horizon_advances_ = 0;

  std::size_t retained_ = 0;
  std::size_t retained_hwm_ = 0;
  std::uint64_t events_retired_ = 0;
  std::size_t eager_violations_ = 0;
  bool exact_ = true;
};

}  // namespace globe::coherence
