#include "globe/sim/network.hpp"

#include "globe/util/assert.hpp"
#include "globe/util/log.hpp"

namespace globe::sim {

void Network::bind(const Address& at, Handler handler) {
  GLOBE_ASSERT_MSG(at.node < node_names_.size(), "bind to unknown node");
  GLOBE_ASSERT_MSG(handlers_.find(at) == handlers_.end(),
                   "endpoint already bound");
  handlers_.emplace(at, std::move(handler));
}

void Network::set_link(NodeId a, NodeId b, const LinkSpec& spec) {
  links_[pair_key(a, b)] = spec;
}

bool Network::prepare_send(const Address& from, const Address& to,
                           std::size_t size, SimTime* deliver_at) {
  GLOBE_ASSERT_MSG(from.node < node_names_.size(), "send from unknown node");
  GLOBE_ASSERT_MSG(to.node < node_names_.size(), "send to unknown node");

  ++stats_.messages_sent;
  stats_.bytes_sent += size;

  if (partitions_.count(pair_key(from.node, to.node)) > 0 ||
      down_nodes_.count(from.node) > 0 || down_nodes_.count(to.node) > 0) {
    ++stats_.messages_dropped;
    return false;
  }

  const bool local = from.node == to.node;
  const LinkSpec& spec = link(from.node, to.node);
  SimDuration delay;
  if (local) {
    // Local fast-path: co-located endpoints talk through the node's own
    // stack, not the modeled link — fixed latency, no jitter, no drop
    // roll. The constant delay keeps local delivery FIFO by itself (the
    // simulator breaks time ties in schedule order).
    delay = SimDuration::micros(10);
  } else {
    if (!spec.reliable_ordered && spec.drop_rate > 0.0 &&
        rng_.chance(spec.drop_rate)) {
      ++stats_.messages_dropped;
      return false;
    }
    delay = spec.base_latency;
    if (spec.jitter.count_micros() > 0) {
      delay = delay + SimDuration(static_cast<std::int64_t>(
                          rng_.below(static_cast<std::uint64_t>(
                              spec.jitter.count_micros() + 1))));
    }
  }

  SimTime at = sim_.now() + delay;
  if (spec.reliable_ordered && !local) {
    const std::uint64_t directed =
        (static_cast<std::uint64_t>(from.node) << 32) | to.node;
    auto [it, _] = last_delivery_.try_emplace(directed, at);
    if (at < it->second) at = it->second;
    it->second = at;
    // A clamp entry at or behind the clock can never delay a future
    // send (deliver_at >= now): sweep such dead entries periodically so
    // the FIFO state tracks only in-flight links instead of growing
    // with every directed pair ever used.
    if (++sends_since_fifo_prune_ >= kFifoPruneInterval) {
      sends_since_fifo_prune_ = 0;
      const SimTime horizon = sim_.now();
      std::erase_if(last_delivery_, [horizon](const auto& entry) {
        return entry.second <= horizon;
      });
    }
  }

  *deliver_at = at;
  return true;
}

void Network::deliver(const Address& from, const Address& to,
                      std::size_t size, BytesView payload) {
  if (down_nodes_.count(to.node) > 0) {
    // The destination crashed while the message was in flight.
    ++stats_.messages_dropped;
    return;
  }
  auto it = handlers_.find(to);
  if (it == handlers_.end()) {
    // Endpoint disappeared (e.g. store torn down); count as a drop.
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += size;
  if (digest_enabled_) {
    std::uint64_t h = wire_digest_;
    for (const auto byte : payload) {
      h ^= static_cast<std::uint8_t>(byte);
      h *= 1099511628211ull;
    }
    h ^= 0xFF;  // datagram separator: digests distinguish framings
    h *= 1099511628211ull;
    wire_digest_ = h;
  }
  it->second(from, payload);
}

namespace {
[[nodiscard]] BytesView payload_view(const Buffer& b) { return BytesView(b); }
[[nodiscard]] BytesView payload_view(const util::SharedBuffer& b) {
  return BytesView(*b);
}
[[nodiscard]] std::size_t payload_size(const Buffer& b) { return b.size(); }
[[nodiscard]] std::size_t payload_size(const util::SharedBuffer& b) {
  return b->size();
}
}  // namespace

template <typename P>
void Network::send_impl(const Address& from, const Address& to, P payload,
                        bool background) {
  SimTime at;
  const std::size_t size = payload_size(payload);
  if (!prepare_send(from, to, size, &at)) return;
  auto event = [this, from, to, size, payload = std::move(payload)] {
    deliver(from, to, size, payload_view(payload));
  };
  if (background) {
    sim_.schedule_background_after(at - sim_.now(), std::move(event));
  } else {
    sim_.schedule_at(at, std::move(event));
  }
}

void Network::send(const Address& from, const Address& to, Buffer payload,
                   bool background) {
  send_impl(from, to, std::move(payload), background);
}

void Network::send_shared(const Address& from, const Address& to,
                          util::SharedBuffer payload, bool background) {
  send_impl(from, to, std::move(payload), background);
}

}  // namespace globe::sim
