// Deterministic discrete-event simulator.
//
// The simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence). All protocol activity in the simulated
// configuration — message delivery, periodic propagation timers, client
// think time — is expressed as scheduled events. Determinism: two runs
// with the same seed and the same schedule produce identical histories.
//
// Events come in two kinds:
//   * foreground — real protocol work (message deliveries, timeouts);
//   * background — self-rearming periodic timers (lazy push, pull poll).
// run() executes events until no FOREGROUND work remains; background
// timers alone never keep the simulation alive, which is what lets a
// test harness "run to quiescence" even when stores poll periodically.
// run_until() is purely time-bounded and executes both kinds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "globe/util/assert.hpp"
#include "globe/util/time.hpp"

namespace globe::sim {

using util::SimDuration;
using util::SimTime;

/// Handle for a scheduled event; used to cancel timers.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= now).
  EventId schedule_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*background=*/false);
  }

  /// Schedules `cb` to run `d` after the current time.
  EventId schedule_after(SimDuration d, Callback cb) {
    return schedule_impl(now_ + d, std::move(cb), /*background=*/false);
  }

  /// Schedules a background event (periodic-timer tick): it fires at its
  /// time like any other event, but does not count as pending work for
  /// run().
  EventId schedule_background_after(SimDuration d, Callback cb) {
    return schedule_impl(now_ + d, std::move(cb), /*background=*/true);
  }

  /// Cancels a pending event. Cancelling an already-run or unknown event
  /// is a no-op, which makes timer management in protocols simple.
  void cancel(EventId id) {
    auto it = kind_.find(id);
    if (it == kind_.end()) return;  // already ran
    if (!it->second) --foreground_pending_;
    it->second = true;  // neutralize: treat as background + mark cancelled
    cancelled_.insert(id);
  }

  /// Runs a single event (foreground or background). Returns false if
  /// the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      Event ev = pop();
      const bool was_cancelled = cancelled_.erase(ev.id) > 0;
      auto kit = kind_.find(ev.id);
      if (kit != kind_.end()) {
        if (!kit->second) --foreground_pending_;
        kind_.erase(kit);
      }
      if (was_cancelled) continue;
      now_ = ev.at;
      ++events_run_;
      ev.cb();
      return true;
    }
    return false;
  }

  /// Runs until no foreground events remain. Background timer ticks due
  /// before the last foreground event still execute (and may spawn new
  /// foreground work, which extends the run). Returns events executed.
  std::size_t run() {
    std::size_t n = 0;
    while (foreground_pending_ > 0 && step()) ++n;
    return n;
  }

  /// Runs all events (both kinds) with time <= t, then advances the
  /// clock to exactly t.
  std::size_t run_until(SimTime t) {
    std::size_t n = 0;
    for (;;) {
      prune_cancelled_head();
      if (queue_.empty() || queue_.top().at > t) break;
      if (step()) ++n;
    }
    if (now_ < t) now_ = t;
    return n;
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_run() const { return events_run_; }

  /// Pending foreground work.
  [[nodiscard]] std::size_t pending() const { return foreground_pending_; }
  [[nodiscard]] bool idle() const { return foreground_pending_ == 0; }

 private:
  struct Event {
    SimTime at;
    EventId id;
    Callback cb;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  EventId schedule_impl(SimTime t, Callback cb, bool background) {
    GLOBE_ASSERT_MSG(t >= now_, "cannot schedule event in the past");
    const EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(cb)});
    kind_.emplace(id, background);
    if (!background) ++foreground_pending_;
    return id;
  }

  Event pop() {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    return ev;
  }

  /// Discards cancelled events at the head so queue_.top() reflects the
  /// next event that will actually execute (run_until relies on this
  /// when comparing against its time bound).
  void prune_cancelled_head() {
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      kind_.erase(queue_.top().id);  // cancel() already fixed the count
      queue_.pop();
    }
  }

  SimTime now_{};
  EventId next_id_ = 1;
  std::uint64_t events_run_ = 0;
  std::size_t foreground_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<EventId, bool> kind_;  // id -> background?
  std::unordered_set<EventId> cancelled_;
};

/// Convenience: a repeating timer that reschedules itself until stopped.
/// Timer ticks are background events: they never keep Simulator::run()
/// alive on their own.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimDuration period() const { return period_; }

  void set_period(SimDuration p) { period_ = p; }

 private:
  void arm() {
    pending_ = sim_.schedule_background_after(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  Simulator& sim_;
  SimDuration period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace globe::sim
