// Deterministic discrete-event simulator.
//
// The simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence). All protocol activity in the simulated
// configuration — message delivery, periodic propagation timers, client
// think time — is expressed as scheduled events. Determinism: two runs
// with the same seed and the same schedule produce identical histories.
//
// Events come in two kinds:
//   * foreground — real protocol work (message deliveries, timeouts);
//   * background — self-rearming periodic timers (lazy push, pull poll).
// run() executes events until no FOREGROUND work remains; background
// timers alone never keep the simulation alive, which is what lets a
// test harness "run to quiescence" even when stores poll periodically.
// run_until() is purely time-bounded and executes both kinds.
//
// Event core: events live in a slab of reusable slots; the heap holds
// plain (time, seq, slot, generation) entries. The background/cancelled
// flags sit inline in the slot, so the per-event hot path costs two
// array accesses instead of the hash-map (kind) and hash-set (cancelled)
// probes of the original design. EventIds are generation-checked: a
// stale id (its event already ran, or its slot was reused) can never
// cancel somebody else's event. Callbacks are stored in a small-buffer
// optimized slot (util::UniqueFunction), so scheduling the common
// closures performs no allocation at all.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "globe/util/assert.hpp"
#include "globe/util/function.hpp"
#include "globe/util/time.hpp"

namespace globe::sim {

using util::SimDuration;
using util::SimTime;

/// Handle for a scheduled event; used to cancel timers. Encodes
/// (generation << 32 | slot); 0 is never issued, so a default-initialized
/// id is safely cancellable as a no-op.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = util::UniqueFunction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= now).
  EventId schedule_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*background=*/false);
  }

  /// Schedules `cb` to run `d` after the current time.
  EventId schedule_after(SimDuration d, Callback cb) {
    return schedule_impl(now_ + d, std::move(cb), /*background=*/false);
  }

  /// Schedules a background event (periodic-timer tick): it fires at its
  /// time like any other event, but does not count as pending work for
  /// run().
  EventId schedule_background_after(SimDuration d, Callback cb) {
    return schedule_impl(now_ + d, std::move(cb), /*background=*/true);
  }

  /// Cancels a pending event. Cancelling an already-run, stale, or
  /// unknown event is a no-op, which makes timer management in protocols
  /// simple.
  void cancel(EventId id) {
    const std::uint32_t index = slot_index(id);
    if (index >= slots_.size()) return;
    Slot& s = slots_[index];
    if (!s.armed || s.generation != generation(id) || s.cancelled) return;
    s.cancelled = true;
    if (!s.background) --foreground_pending_;
  }

  /// Runs a single event (foreground or background). Returns false if
  /// the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      const HeapEntry top = queue_.top();
      queue_.pop();
      Slot& s = slots_[top.slot];
      GLOBE_ASSERT(s.armed && s.generation == top.generation);
      const bool cancelled = s.cancelled;
      if (!cancelled && !s.background) --foreground_pending_;
      Callback cb = std::move(s.cb);
      release(top.slot);
      if (cancelled) continue;
      now_ = top.at;
      ++events_run_;
      cb();
      return true;
    }
    return false;
  }

  /// Runs until no foreground events remain. Background timer ticks due
  /// before the last foreground event still execute (and may spawn new
  /// foreground work, which extends the run). Returns events executed.
  std::size_t run() {
    std::size_t n = 0;
    while (foreground_pending_ > 0 && step()) ++n;
    return n;
  }

  /// Runs all events (both kinds) with time <= t, then advances the
  /// clock to exactly t.
  std::size_t run_until(SimTime t) {
    std::size_t n = 0;
    for (;;) {
      prune_cancelled_head();
      if (queue_.empty() || queue_.top().at > t) break;
      if (step()) ++n;
    }
    if (now_ < t) now_ = t;
    return n;
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t events_run() const { return events_run_; }

  /// Pending foreground work.
  [[nodiscard]] std::size_t pending() const { return foreground_pending_; }
  [[nodiscard]] bool idle() const { return foreground_pending_ == 0; }

 private:
  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;
    bool armed = false;
    bool background = false;
    bool cancelled = false;
  };

  struct HeapEntry {
    SimTime at;
    std::uint64_t seq = 0;  // schedule order; FIFO among same-time events
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };

  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] static std::uint32_t slot_index(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  }
  [[nodiscard]] static std::uint32_t generation(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  [[nodiscard]] static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  EventId schedule_impl(SimTime t, Callback cb, bool background) {
    GLOBE_ASSERT_MSG(t >= now_, "cannot schedule event in the past");
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[index];
    s.cb = std::move(cb);
    s.armed = true;
    s.background = background;
    s.cancelled = false;
    queue_.push(HeapEntry{t, next_seq_++, index, s.generation});
    if (!background) ++foreground_pending_;
    return make_id(s.generation, index);
  }

  /// Returns a fired/cancelled slot to the free list. Bumping the
  /// generation invalidates every outstanding EventId for it.
  void release(std::uint32_t index) {
    Slot& s = slots_[index];
    s.armed = false;
    ++s.generation;
    free_.push_back(index);
  }

  /// Discards cancelled events at the head so queue_.top() reflects the
  /// next event that will actually execute (run_until relies on this
  /// when comparing against its time bound).
  void prune_cancelled_head() {
    while (!queue_.empty()) {
      const HeapEntry top = queue_.top();
      Slot& s = slots_[top.slot];
      if (!s.cancelled) break;  // armed and live (cancel() is gen-checked)
      s.cb.reset();
      release(top.slot);
      queue_.pop();
    }
  }

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_run_ = 0;
  std::size_t foreground_pending_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

/// Convenience: a repeating timer that reschedules itself until stopped.
/// Timer ticks are background events: they never keep Simulator::run()
/// alive on their own.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimDuration period() const { return period_; }

  void set_period(SimDuration p) { period_ = p; }

 private:
  void arm() {
    pending_ = sim_.schedule_background_after(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  Simulator& sim_;
  SimDuration period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace globe::sim
