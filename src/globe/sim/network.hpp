// Simulated wide-area network.
//
// The network delivers byte payloads between (node, port) endpoints with
// a configurable latency model. Two delivery disciplines are supported,
// matching the paper's discussion in Section 4.2:
//
//  * reliable-ordered ("TCP-like", the prototype's default): no loss, and
//    per (src-node, dst-node) FIFO ordering is preserved by clamping each
//    delivery to happen no earlier than the previous one on that link;
//  * lossy-unordered ("UDP-like"): messages can be dropped with a
//    configured probability and jitter can reorder them.
//
// The network also keeps traffic accounting (messages/bytes, per link and
// global) used by the benchmark harness, and supports partitions for
// fault-injection tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "globe/net/address.hpp"
#include "globe/sim/simulator.hpp"
#include "globe/util/buffer.hpp"
#include "globe/util/rng.hpp"

namespace globe::sim {

using net::Address;
using util::Buffer;
using util::BytesView;

/// Properties of the path between two nodes.
struct LinkSpec {
  SimDuration base_latency = SimDuration::millis(20);
  SimDuration jitter = SimDuration::micros(0);  // uniform in [0, jitter]
  double drop_rate = 0.0;                       // only in lossy mode
  bool reliable_ordered = true;                 // TCP-like vs UDP-like
};

/// Aggregate traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Address& from, BytesView payload)>;

  Network(Simulator& sim, std::uint64_t seed = 1)
      : sim_(sim), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; returns its id. A human-readable name aids logging.
  NodeId add_node(std::string name = {}) {
    node_names_.push_back(name.empty()
                              ? "node" + std::to_string(node_names_.size())
                              : std::move(name));
    return static_cast<NodeId>(node_names_.size() - 1);
  }

  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId n) const {
    return node_names_.at(n);
  }

  /// Binds a handler to an endpoint. One handler per endpoint.
  void bind(const Address& at, Handler handler);

  /// Removes an endpoint binding.
  void unbind(const Address& at) { handlers_.erase(at); }

  /// Sets the default link spec used for pairs without an override.
  void set_default_link(const LinkSpec& spec) { default_link_ = spec; }

  /// Overrides the link spec for a specific node pair (both directions).
  void set_link(NodeId a, NodeId b, const LinkSpec& spec);

  /// Cuts connectivity between two nodes (both directions).
  void partition(NodeId a, NodeId b) { partitions_.insert(pair_key(a, b)); }

  /// Restores connectivity between two nodes.
  void heal(NodeId a, NodeId b) { partitions_.erase(pair_key(a, b)); }

  void heal_all() { partitions_.clear(); }

  /// Cuts every pairwise link between the two node groups (a scripted
  /// network partition; heal_all() restores them).
  void partition_groups(const std::vector<NodeId>& a,
                        const std::vector<NodeId>& b) {
    for (const NodeId x : a) {
      for (const NodeId y : b) partition(x, y);
    }
  }

  /// Marks a node as crashed: sends from it are dropped, and messages
  /// addressed to it — including ones already in flight — are dropped at
  /// delivery time (a crash loses the wire). Independent of partitions.
  void set_node_down(NodeId n, bool down) {
    if (down) {
      down_nodes_.insert(n);
    } else {
      down_nodes_.erase(n);
    }
  }
  [[nodiscard]] bool node_down(NodeId n) const {
    return down_nodes_.count(n) > 0;
  }

  /// Sends a payload. Delivery (or drop) is scheduled on the simulator.
  /// `background` marks periodic liveness chatter (heartbeats, clock
  /// advertisements): it is delivered at the same time through the same
  /// link model, but as a background event, so pure beacon traffic never
  /// keeps a run-to-quiescence simulation alive.
  void send(const Address& from, const Address& to, Buffer payload,
            bool background = false);

  /// Shared-datagram send: the multicast fan-out path. The network keeps
  /// only a reference to the (immutable) payload until delivery, so one
  /// encoded buffer serves any number of destinations copy-free.
  void send_shared(const Address& from, const Address& to,
                   util::SharedBuffer payload, bool background = false);

  [[nodiscard]] const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Wire digest (observability gate): when enabled, every delivered
  /// payload is folded into an order-sensitive FNV-1a digest. Two runs
  /// of a deterministic scenario produce equal digests iff they put the
  /// same bytes on the wire in the same order — bench_scale uses this to
  /// prove that disabled tracing leaves the wire stream byte-identical.
  void enable_wire_digest(bool on) {
    digest_enabled_ = on;
    wire_digest_ = kFnvOffset;
  }
  [[nodiscard]] std::uint64_t wire_digest() const { return wire_digest_; }

  /// Latency currently configured between two nodes (base, no jitter).
  [[nodiscard]] SimDuration base_latency(NodeId a, NodeId b) const {
    return link(a, b).base_latency;
  }

  /// Directed pairs currently tracked for reliable-ordered FIFO
  /// clamping. Bounded: entries at or behind the clock are swept every
  /// kFifoPruneInterval sends (regression guard for unbounded growth).
  [[nodiscard]] std::size_t fifo_state_size() const {
    return last_delivery_.size();
  }

 private:
  /// Shared pre-delivery logic: traffic accounting, partition/crash and
  /// loss drops, latency + FIFO clamping. False when the message is
  /// dropped at send time; otherwise *deliver_at is the delivery time.
  bool prepare_send(const Address& from, const Address& to, std::size_t size,
                    SimTime* deliver_at);
  template <typename P>
  void send_impl(const Address& from, const Address& to, P payload,
                 bool background);
  void deliver(const Address& from, const Address& to, std::size_t size,
               BytesView payload);

  [[nodiscard]] static std::uint64_t pair_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  [[nodiscard]] const LinkSpec& link(NodeId a, NodeId b) const {
    auto it = links_.find(pair_key(a, b));
    return it == links_.end() ? default_link_ : it->second;
  }

  Simulator& sim_;
  util::Rng rng_;
  std::vector<std::string> node_names_;
  std::unordered_map<Address, Handler> handlers_;
  std::unordered_map<std::uint64_t, LinkSpec> links_;
  std::unordered_set<std::uint64_t> partitions_;
  std::unordered_set<NodeId> down_nodes_;
  // Last scheduled delivery time per directed node pair; enforces FIFO on
  // reliable-ordered links. Entries whose time has passed are dead (they
  // can never clamp a future send) and are pruned periodically.
  static constexpr std::size_t kFifoPruneInterval = 1024;
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;
  std::size_t sends_since_fifo_prune_ = 0;
  LinkSpec default_link_;
  TrafficStats stats_;
  static constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  bool digest_enabled_ = false;
  std::uint64_t wire_digest_ = kFnvOffset;
};

}  // namespace globe::sim
