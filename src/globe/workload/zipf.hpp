// Zipf-distributed popularity, the standard model for Web page access.
#pragma once

#include <cstddef>
#include <vector>

#include "globe/util/rng.hpp"

namespace globe::workload {

/// Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^s.
/// s = 0 degenerates to uniform; s ~ 0.8-1.0 models Web popularity.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double s);

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Draws one rank using the provided generator.
  std::size_t sample(util::Rng& rng) const;

 private:
  std::vector<double> cdf_;  // cumulative distribution, cdf_.back() == 1
};

}  // namespace globe::workload
