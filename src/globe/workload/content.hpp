// Synthetic page content generation.
#pragma once

#include <string>

#include "globe/util/rng.hpp"

namespace globe::workload {

/// Produces `bytes` of deterministic pseudo-HTML content.
inline std::string make_content(util::Rng& rng, std::size_t bytes,
                                std::string_view tag = "p") {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz     ABCDEFGHIJKLMNOPQRSTUVWXYZ.,";
  std::string out;
  out.reserve(bytes + 16);
  out += "<";
  out += tag;
  out += ">";
  while (out.size() < bytes) {
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  out += "</";
  out += tag;
  out += ">";
  return out;
}

}  // namespace globe::workload
