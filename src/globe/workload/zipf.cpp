#include "globe/workload/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "globe/util/assert.hpp"

namespace globe::workload {

ZipfGenerator::ZipfGenerator(std::size_t n, double s) {
  GLOBE_ASSERT(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (double& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfGenerator::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace globe::workload
