// Wire envelope shared by all protocol traffic.
//
// Every message on the network is an Envelope: a fixed header naming the
// message type, the distributed object it concerns, and a request id for
// request/reply correlation, followed by an opaque body encoded by the
// layer that owns the message type. Replication and communication objects
// never look inside bodies they do not own — the paper's requirement that
// they operate only on encoded invocation messages.
//
// Wire layout: type (u8), object (u64), request_id (u64), then the body
// as the remainder of the datagram. The body carries no length prefix —
// the envelope is always the whole payload — which is what lets the
// receive path decode an EnvelopeView without copying a single body byte.
//
// Trace context (observability): bit 0x80 of the type byte — unused by
// every MsgType, all of which are <= 0x40 — flags an optional trace
// context appended after request_id as two u64s (trace id, parent span
// id). When tracing is off the bit is never set and the wire stream is
// byte-identical to a build without tracing; bench_scale gates this with
// a wire digest. The context rides inside the datagram, so multicast
// frame batching, retransmission, and the TCP bulk lane carry it
// untouched.
#pragma once

#include <cstdint>
#include <string>

#include "globe/obs/context.hpp"
#include "globe/util/buffer.hpp"
#include "globe/util/ids.hpp"

namespace globe::msg {

using util::Buffer;
using util::BytesView;
using util::Reader;
using util::Writer;

enum class MsgType : std::uint8_t {
  // Client <-> store (control object traffic).
  kInvokeRequest = 1,
  kInvokeReply = 2,
  // Inter-store replication protocol.
  kWriteForward = 3,   // record forwarded towards the primary
  kWriteAck = 4,       // primary/store acknowledges a write
  kUpdate = 5,         // push propagation of write records
  kSnapshot = 6,       // full-state transfer
  kInvalidate = 7,     // page invalidations
  kNotify = 8,         // notification-only coherence transfer
  kFetchRequest = 9,   // pull / demand-update
  kFetchReply = 10,
  kSubscribe = 11,     // store joins the propagation graph
  kSubscribeAck = 12,
  kAntiEntropyRequest = 13,  // eventual-coherence gossip
  kAntiEntropyReply = 14,
  kPolicyUpdate = 15,        // runtime strategy replacement
  // Naming and location services.
  kNameRequest = 20,
  kNameReply = 21,
  kLocateRequest = 22,
  kLocateReply = 23,
  // Dynamic replica membership (per-object, epoch-numbered views).
  kMembershipJoin = 24,       // store joins the object's replica view
  kMembershipJoinAck = 25,    // reply: the current view
  kMembershipLeave = 26,      // graceful departure
  kMembershipHeartbeat = 27,  // liveness beacon (also re-admits after heal)
  kMembershipWatch = 28,      // client asks for view-change pushes
  kViewChange = 29,           // new epoch broadcast to members + watchers
  // Page-granular delta snapshots (state transfer for receivers that
  // already hold most of the document).
  kSnapshotDeltaRequest = 30,  // receiver's page-stamp summary or floor
  kSnapshotDeltaReply = 31,    // differing pages + drops (or full fallback)
  // Membership view diffs (epoch + joined/left instead of full views).
  kViewDelta = 32,          // incremental view-change broadcast
  kViewFetchRequest = 33,   // full-view fetch after an epoch gap
  kViewFetchReply = 34,     // reply: the current view
  // Placement service (object -> shard -> contact resolution).
  kPlacementFetch = 35,        // full layout + shard contact tables
  kPlacementFetchReply = 36,
  kPlacementResolve = 37,      // resolve one object (env.object)
  kPlacementResolveReply = 38,
  kPlacementWatch = 39,        // subscribe to placement invalidations
  kPlacementInvalidate = 40,   // push: placement version changed
  // Cluster-wide GC floor (min applied clock over the live view),
  // aggregated by the membership service from heartbeat piggybacks and
  // broadcast to members to key write-log compaction, tombstone GC, and
  // streaming-checker event retirement.
  kStabilityHorizon = 41,
};

[[nodiscard]] const char* to_string(MsgType t);

/// True for message types that answer a correlated request; the
/// communication object routes these to the pending-reply handler.
[[nodiscard]] constexpr bool is_reply(MsgType t) {
  switch (t) {
    case MsgType::kInvokeReply:
    case MsgType::kWriteAck:
    case MsgType::kFetchReply:
    case MsgType::kSubscribeAck:
    case MsgType::kAntiEntropyReply:
    case MsgType::kNameReply:
    case MsgType::kLocateReply:
    case MsgType::kMembershipJoinAck:
    case MsgType::kSnapshotDeltaReply:
    case MsgType::kViewFetchReply:
    case MsgType::kPlacementFetchReply:
    case MsgType::kPlacementResolveReply:
      return true;
    default:
      return false;
  }
}

struct Envelope;

/// Borrowed decode of a received datagram: the body is a view into the
/// receive buffer, valid for the duration of the delivery callback. The
/// hot path (every message a store handles) copies no body bytes; a
/// handler that must retain the body copies it explicitly (to_owned()).
struct EnvelopeView {
  MsgType type{};
  ObjectId object = 0;
  std::uint64_t request_id = 0;  // 0 when not a correlated request/reply
  obs::TraceContext trace;       // invalid unless the sender was traced
  BytesView body;

  /// Set in the type byte when a trace context follows the request id.
  static constexpr std::uint8_t kTraceFlag = 0x80;

  static EnvelopeView decode(BytesView wire) {
    Reader r(wire);
    EnvelopeView e;
    const std::uint8_t raw = r.u8();
    e.type = static_cast<MsgType>(raw & ~kTraceFlag);
    e.object = r.u64();
    e.request_id = r.u64();
    if ((raw & kTraceFlag) != 0) {
      e.trace.trace_id = r.u64();
      e.trace.span_id = r.u64();
    }
    e.body = r.rest();
    return e;
  }

  [[nodiscard]] Envelope to_owned() const;
};

struct Envelope {
  MsgType type{};
  ObjectId object = 0;
  std::uint64_t request_id = 0;  // 0 when not a correlated request/reply
  obs::TraceContext trace;       // invalid unless the sender was traced
  Buffer body;

  /// Writes the fixed header; the body follows as raw bytes, so a sender
  /// can serialize header and body into one buffer with no intermediate
  /// copy (CommunicationObject::send_with).
  static void encode_header(Writer& w, MsgType type, ObjectId object,
                            std::uint64_t request_id) {
    w.u8(static_cast<std::uint8_t>(type));
    w.u64(object);
    w.u64(request_id);
  }

  /// Header with a trace context: sets the flag bit and appends the two
  /// context words. An invalid context encodes exactly like the
  /// three-field overload — same bytes, no flag.
  static void encode_header(Writer& w, MsgType type, ObjectId object,
                            std::uint64_t request_id,
                            const obs::TraceContext& trace) {
    if (!trace.valid()) {
      encode_header(w, type, object, request_id);
      return;
    }
    w.u8(static_cast<std::uint8_t>(type) | EnvelopeView::kTraceFlag);
    w.u64(object);
    w.u64(request_id);
    w.u64(trace.trace_id);
    w.u64(trace.span_id);
  }

  [[nodiscard]] Buffer encode() const {
    Writer w;
    w.reserve(1 + 8 + 8 + (trace.valid() ? 16 : 0) + body.size());
    encode_header(w, type, object, request_id, trace);
    w.raw(BytesView(body));
    return w.take();
  }

  static Envelope decode(BytesView wire) {
    return EnvelopeView::decode(wire).to_owned();
  }
};

inline Envelope EnvelopeView::to_owned() const {
  return Envelope{type, object, request_id, trace,
                  Buffer(body.begin(), body.end())};
}

}  // namespace globe::msg
