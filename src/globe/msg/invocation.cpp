#include "globe/msg/invocation.hpp"

namespace globe::msg {

const char* to_string(Method m) {
  switch (m) {
    case Method::kGetPage: return "GetPage";
    case Method::kPutPage: return "PutPage";
    case Method::kDeletePage: return "DeletePage";
    case Method::kListPages: return "ListPages";
    case Method::kGetDocument: return "GetDocument";
  }
  return "Unknown";
}

}  // namespace globe::msg
