#include "globe/msg/envelope.hpp"

namespace globe::msg {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kInvokeRequest: return "InvokeRequest";
    case MsgType::kInvokeReply: return "InvokeReply";
    case MsgType::kWriteForward: return "WriteForward";
    case MsgType::kWriteAck: return "WriteAck";
    case MsgType::kUpdate: return "Update";
    case MsgType::kSnapshot: return "Snapshot";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kNotify: return "Notify";
    case MsgType::kFetchRequest: return "FetchRequest";
    case MsgType::kFetchReply: return "FetchReply";
    case MsgType::kSubscribe: return "Subscribe";
    case MsgType::kSubscribeAck: return "SubscribeAck";
    case MsgType::kAntiEntropyRequest: return "AntiEntropyRequest";
    case MsgType::kAntiEntropyReply: return "AntiEntropyReply";
    case MsgType::kPolicyUpdate: return "PolicyUpdate";
    case MsgType::kNameRequest: return "NameRequest";
    case MsgType::kNameReply: return "NameReply";
    case MsgType::kLocateRequest: return "LocateRequest";
    case MsgType::kLocateReply: return "LocateReply";
    case MsgType::kMembershipJoin: return "MembershipJoin";
    case MsgType::kMembershipJoinAck: return "MembershipJoinAck";
    case MsgType::kMembershipLeave: return "MembershipLeave";
    case MsgType::kMembershipHeartbeat: return "MembershipHeartbeat";
    case MsgType::kMembershipWatch: return "MembershipWatch";
    case MsgType::kViewChange: return "ViewChange";
    case MsgType::kSnapshotDeltaRequest: return "SnapshotDeltaRequest";
    case MsgType::kSnapshotDeltaReply: return "SnapshotDeltaReply";
    case MsgType::kViewDelta: return "ViewDelta";
    case MsgType::kViewFetchRequest: return "ViewFetchRequest";
    case MsgType::kViewFetchReply: return "ViewFetchReply";
    case MsgType::kPlacementFetch: return "PlacementFetch";
    case MsgType::kPlacementFetchReply: return "PlacementFetchReply";
    case MsgType::kPlacementResolve: return "PlacementResolve";
    case MsgType::kPlacementResolveReply: return "PlacementResolveReply";
    case MsgType::kPlacementWatch: return "PlacementWatch";
    case MsgType::kPlacementInvalidate: return "PlacementInvalidate";
    case MsgType::kStabilityHorizon: return "StabilityHorizon";
  }
  return "Unknown";
}

}  // namespace globe::msg
