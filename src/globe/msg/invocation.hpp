// Encoded method invocations.
//
// The paper's key structural requirement: replication and communication
// objects are unaware of the semantics object's methods and state; they
// handle only invocation messages in which method identifiers and
// parameters have been encoded. Invocation is that encoding. The Web
// semantics object (globe::web) defines the method ids it understands.
#pragma once

#include <cstdint>
#include <string>

#include "globe/util/buffer.hpp"

namespace globe::msg {

using util::Buffer;
using util::BytesView;
using util::Reader;
using util::Writer;

/// Method identifiers for the Web document interface (Section 2: "a
/// method for selecting a page and reading it ... a method for replacing
/// one of the document's pages").
enum class Method : std::uint32_t {
  kGetPage = 1,      // args: page name                -> page content
  kPutPage = 2,      // args: page name, content, mime -> ack
  kDeletePage = 3,   // args: page name                -> ack
  kListPages = 4,    // args: none                     -> page names
  kGetDocument = 5,  // args: none                     -> full document
};

[[nodiscard]] constexpr bool is_write(Method m) {
  return m == Method::kPutPage || m == Method::kDeletePage;
}

[[nodiscard]] const char* to_string(Method m);

struct Invocation {
  Method method{};
  Buffer args;

  [[nodiscard]] bool writes() const { return is_write(method); }

  [[nodiscard]] Buffer encode() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(method));
    w.bytes(BytesView(args));
    return w.take();
  }

  static Invocation decode(BytesView wire) {
    Reader r(wire);
    Invocation inv;
    inv.method = static_cast<Method>(r.u32());
    inv.args = r.bytes_copy();
    r.expect_end();
    return inv;
  }

  // -- Argument constructors for the Web method set -------------------

  static Invocation get_page(std::string_view page) {
    Writer w;
    w.str(page);
    return Invocation{Method::kGetPage, w.take()};
  }

  static Invocation put_page(std::string_view page, std::string_view content,
                             std::string_view mime = "text/html") {
    Writer w;
    w.str(page);
    w.str(content);
    w.str(mime);
    return Invocation{Method::kPutPage, w.take()};
  }

  static Invocation delete_page(std::string_view page) {
    Writer w;
    w.str(page);
    return Invocation{Method::kDeletePage, w.take()};
  }

  static Invocation list_pages() { return Invocation{Method::kListPages, {}}; }

  static Invocation get_document() {
    return Invocation{Method::kGetDocument, {}};
  }
};

}  // namespace globe::msg
