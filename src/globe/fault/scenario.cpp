#include "globe/fault/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <string>

#include "globe/obs/trace.hpp"

namespace globe::fault {

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kCrash: return "crash";
    case ActionKind::kRecover: return "recover";
    case ActionKind::kLeave: return "leave";
    case ActionKind::kJoin: return "join";
    case ActionKind::kPartition: return "partition";
    case ActionKind::kHeal: return "heal";
    case ActionKind::kChurn: return "churn";
  }
  return "?";
}

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_time(std::string_view tok, SimDuration* out) {
  std::int64_t value = 0;
  const auto [rest, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || value < 0) return false;
  const std::string_view unit(rest, tok.data() + tok.size() - rest);
  if (unit == "us") {
    *out = SimDuration::micros(value);
  } else if (unit == "ms") {
    *out = SimDuration::millis(value);
  } else if (unit == "s") {
    *out = SimDuration::seconds(value);
  } else {
    return false;
  }
  return true;
}

bool parse_index(std::string_view tok, std::size_t* out) {
  std::uint64_t value = 0;
  const auto [rest, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || rest != tok.data() + tok.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool parse_index_list(std::string_view tok, std::vector<std::size_t>* out) {
  while (!tok.empty()) {
    const std::size_t comma = tok.find(',');
    const std::string_view head = tok.substr(0, comma);
    std::size_t idx = 0;
    if (!parse_index(head, &idx)) return false;
    out->push_back(idx);
    if (comma == std::string_view::npos) break;
    tok.remove_prefix(comma + 1);
  }
  return !out->empty();
}

bool parse_u64(std::string_view tok, std::uint64_t* out) {
  const auto [rest, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return ec == std::errc{} && rest == tok.data() + tok.size();
}

/// Consumes a `shard=<id>` / `object=<id>` token into the action's
/// scope. Returns false for any other token.
bool parse_scope_kv(std::string_view kv, Action* a) {
  const std::size_t eq = kv.find('=');
  if (eq == std::string_view::npos) return false;
  const std::string_view key = kv.substr(0, eq);
  const std::string_view val = kv.substr(eq + 1);
  std::uint64_t value = 0;
  if (key == "shard") {
    if (!parse_u64(val, &value) || value >= kInvalidShard) return false;
    a->shard = static_cast<ShardId>(value);
    return true;
  }
  if (key == "object") {
    if (!parse_u64(val, &value) || value == 0) return false;
    a->object = value;
    return true;
  }
  return false;
}

bool parse_fraction(std::string_view tok, double* out) {
  double value = 0;
  const auto [rest, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || rest != tok.data() + tok.size()) return false;
  if (value <= 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

}  // namespace

bool ScenarioScript::parse(std::string_view text, ScenarioScript* out,
                           std::string* error) {
  out->actions.clear();
  const auto fail = [&](int line_no, const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  };

  int line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;

    if (toks[0] != "at" || toks.size() < 3) {
      return fail(line_no, "expected 'at <time> <action> ...'");
    }
    Action a;
    if (!parse_time(toks[1], &a.at)) {
      return fail(line_no, "bad time (want <n>us|ms|s)");
    }
    const std::string_view verb = toks[2];

    if (verb == "crash" || verb == "recover" || verb == "leave") {
      a.kind = verb == "crash"     ? ActionKind::kCrash
               : verb == "recover" ? ActionKind::kRecover
                                   : ActionKind::kLeave;
      // Either one store index, or one-or-more scope arguments
      // (shard=<id>, object=<id>).
      bool scoped_form = toks.size() > 3;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        if (!parse_scope_kv(toks[i], &a)) {
          scoped_form = false;
          break;
        }
      }
      if (!scoped_form &&
          (toks.size() != 4 || !parse_index(toks[3], &a.store))) {
        return fail(line_no, "want '" + std::string(verb) +
                                 " <store-index>' or '" + std::string(verb) +
                                 " shard=<id>|object=<id>'");
      }
    } else if (verb == "join") {
      if (toks.size() != 4 || !parse_index(toks[3], &a.count) ||
          a.count == 0) {
        return fail(line_no, "want 'join <count>'");
      }
      a.kind = ActionKind::kJoin;
    } else if (verb == "partition") {
      a.kind = ActionKind::kPartition;
      // Either explicit sides, or a scope cut off from everyone else.
      bool scoped_form = toks.size() > 3;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        if (!parse_scope_kv(toks[i], &a)) {
          scoped_form = false;
          break;
        }
      }
      if (!scoped_form) {
        const std::string_view arg = toks.size() == 4 ? toks[3] : "";
        const std::size_t bar = arg.find('|');
        if (toks.size() != 4 || bar == std::string_view::npos ||
            !parse_index_list(arg.substr(0, bar), &a.side_a) ||
            !parse_index_list(arg.substr(bar + 1), &a.side_b)) {
          return fail(line_no,
                      "want 'partition <i,j,..>|<k,l,..>' or 'partition "
                      "shard=<id>|object=<id>'");
        }
      }
    } else if (verb == "heal") {
      if (toks.size() != 3) return fail(line_no, "want 'heal'");
      a.kind = ActionKind::kHeal;
    } else if (verb == "churn") {
      a.kind = ActionKind::kChurn;
      a.period = SimDuration::millis(500);
      a.until = a.at;
      a.downtime = SimDuration::millis(500);
      for (std::size_t i = 3; i < toks.size(); ++i) {
        const std::string_view kv = toks[i];
        const std::size_t eq = kv.find('=');
        if (eq == std::string_view::npos) {
          return fail(line_no, "churn wants key=value arguments");
        }
        const std::string_view key = kv.substr(0, eq);
        const std::string_view val = kv.substr(eq + 1);
        bool ok = false;
        if (key == "period") {
          ok = parse_time(val, &a.period);
        } else if (key == "until") {
          ok = parse_time(val, &a.until);
        } else if (key == "down") {
          ok = parse_time(val, &a.downtime);
        } else if (key == "fraction") {
          ok = parse_fraction(val, &a.fraction);
        } else if (key == "shard" || key == "object") {
          ok = parse_scope_kv(kv, &a);
        }
        if (!ok) {
          return fail(line_no, "bad churn argument '" + std::string(kv) + "'");
        }
      }
      if (a.until < a.at || a.period.count_micros() <= 0) {
        return fail(line_no, "churn needs until >= at and period > 0");
      }
    } else {
      return fail(line_no, "unknown action '" + std::string(verb) + "'");
    }
    out->actions.push_back(std::move(a));
  }
  return true;
}

SimDuration ScenarioScript::duration() const {
  SimDuration end{};
  for (const Action& a : actions) {
    const SimDuration tail =
        a.kind == ActionKind::kChurn ? a.until + a.downtime : a.at;
    if (tail > end) end = tail;
  }
  return end;
}

ScenarioEngine::ScenarioEngine(ScenarioScript script, FaultHost& host,
                               std::uint64_t seed)
    : host_(host), rng_(seed), script_duration_(script.duration()) {
  for (Action& a : script.actions) {
    pending_.emplace(a.at.count_micros(), std::move(a));
  }
}

void ScenarioEngine::arm(sim::Simulator& sim) {
  sim_ = &sim;
  auto queued = std::move(pending_);
  pending_.clear();
  for (auto& [at_us, action] : queued) {
    dispatch(action, SimDuration(at_us));
  }
}

void ScenarioEngine::dispatch(const Action& a, SimDuration delay) {
  if (sim_ != nullptr) {
    // Background: fault injection models the environment; it must never
    // keep a run-to-quiescence alive on its own.
    sim_->schedule_background_after(delay,
                                    [this, a] { apply(a); });
  } else {
    pending_.emplace(a.at.count_micros(), a);
  }
}

void ScenarioEngine::advance_to(SimDuration elapsed) {
  while (!pending_.empty() &&
         pending_.begin()->first <= elapsed.count_micros()) {
    const Action a = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    apply(a);
  }
}

bool ScenarioEngine::in_scope(const Action& a, std::size_t index) const {
  if (a.shard != kInvalidShard && host_.store_shard(index) != a.shard) {
    return false;
  }
  if (a.object != 0 && !host_.store_hosts_object(index, a.object)) {
    return false;
  }
  return true;
}

void ScenarioEngine::apply(const Action& a) {
  // Fault actions mark the trace: a span of latency or a paused window
  // in the flight recorder reads very differently next to a
  // "fault:partition" marker than without one.
  if (obs::tracing_enabled()) {
    obs::annotate(std::string("fault:") + to_string(a.kind));
  }
  switch (a.kind) {
    case ActionKind::kCrash:
      if (a.scoped()) {
        // Scoped sweeps exempt primaries (the persistence root); a
        // scripted primary crash names its index explicitly.
        for (std::size_t i = 0; i < host_.store_count(); ++i) {
          if (in_scope(a, i) && host_.store_alive(i) &&
              !host_.store_is_primary(i)) {
            host_.crash_store(i);
            ++stats_.crashes;
          }
        }
      } else if (a.store < host_.store_count() && host_.store_alive(a.store)) {
        host_.crash_store(a.store);
        ++stats_.crashes;
      }
      return;
    case ActionKind::kRecover:
      if (a.scoped()) {
        for (std::size_t i = 0; i < host_.store_count(); ++i) {
          if (in_scope(a, i) && !host_.store_alive(i)) {
            host_.recover_store(i);
            ++stats_.recoveries;
          }
        }
      } else if (a.store < host_.store_count() &&
                 !host_.store_alive(a.store)) {
        host_.recover_store(a.store);
        ++stats_.recoveries;
      }
      return;
    case ActionKind::kLeave:
      if (a.scoped()) {
        for (std::size_t i = 0; i < host_.store_count(); ++i) {
          if (in_scope(a, i) && host_.store_alive(i) &&
              !host_.store_is_primary(i)) {
            host_.leave_store(i);
            ++stats_.leaves;
          }
        }
      } else if (a.store < host_.store_count() && host_.store_alive(a.store)) {
        host_.leave_store(a.store);
        ++stats_.leaves;
      }
      return;
    case ActionKind::kJoin:
      host_.join_stores(a.count);
      stats_.joins += a.count;
      return;
    case ActionKind::kPartition:
      if (a.scoped()) {
        // The scope vs the rest of the world.
        std::vector<std::size_t> side_a, side_b;
        for (std::size_t i = 0; i < host_.store_count(); ++i) {
          (in_scope(a, i) ? side_a : side_b).push_back(i);
        }
        if (side_a.empty() || side_b.empty()) return;
        host_.partition(side_a, side_b);
      } else {
        host_.partition(a.side_a, a.side_b);
      }
      ++stats_.partitions;
      return;
    case ActionKind::kHeal:
      host_.heal();
      ++stats_.heals;
      return;
    case ActionKind::kChurn: {
      ++stats_.churn_ticks;
      std::vector<std::size_t> eligible;
      for (std::size_t i = 0; i < host_.store_count(); ++i) {
        if (host_.store_alive(i) && !host_.store_is_primary(i) &&
            in_scope(a, i)) {
          eligible.push_back(i);
        }
      }
      if (!eligible.empty()) {
        std::size_t victims = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   a.fraction * static_cast<double>(eligible.size()) + 0.5));
        victims = std::min(victims, eligible.size());
        for (std::size_t v = 0; v < victims; ++v) {
          // Partial Fisher-Yates: pick without replacement.
          const std::size_t pick =
              v + static_cast<std::size_t>(rng_.below(eligible.size() - v));
          std::swap(eligible[v], eligible[pick]);
          host_.crash_store(eligible[v]);
          ++stats_.crashes;
          Action rec;
          rec.kind = ActionKind::kRecover;
          rec.at = a.at + a.downtime;
          rec.store = eligible[v];
          dispatch(rec, a.downtime);
        }
      }
      if (a.at + a.period <= a.until) {
        Action next = a;
        next.at = a.at + a.period;
        dispatch(next, a.period);
      }
      return;
    }
  }
}

}  // namespace globe::fault
