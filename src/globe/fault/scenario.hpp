// Fault & churn scenario engine.
//
// A ScenarioScript is a declarative description of the faults a run
// should suffer — crashes, recoveries, graceful leaves, flash-crowd
// joins, network partitions, heals, and rolling churn — each pinned to a
// point in (virtual) time. The ScenarioEngine binds a script to a
// FaultHost (the deployment being tormented: the simulated Testbed or a
// loopback-runtime harness) and fires the actions, either scheduled on
// the discrete-event simulator or stepped manually for runtimes without
// one. Scripts are plain text (docs/scenarios.md):
//
//   # seconds/millis/micros suffixes; one action per line
//   at 2s   partition 0,1,3|2,4
//   at 4s   heal
//   at 5s   crash 3
//   at 6s   recover 3
//   at 7s   leave 2
//   at 8s   join 4
//   at 1s   churn period=400ms until=8s down=600ms fraction=0.1
//
// `churn` is the rolling-failure generator: every `period` it crashes a
// random `fraction` of the alive non-primary stores and schedules each
// one's recovery `down` later, until `until`. Indices are host store
// indices (the Testbed's construction order). The engine is
// deterministic given its seed.
//
// Sharded deployments scope actions with `shard=<id>` and/or
// `object=<id>` instead of store indices:
//
//   at 2s   crash shard=1                 # every non-primary store of shard 1
//   at 3s   recover shard=1
//   at 4s   partition shard=0             # shard 0 vs everyone else
//   at 1s   churn period=200ms until=5s shard=1
//   at 6s   leave object=77               # stores hosting object 77
//
// A scope selects the matching stores through the host's
// store_shard()/store_hosts_object() accessors. Scoped crash, leave,
// and churn exempt shard primaries (like unscoped churn): the paper's
// permanent store is the persistence root — crashing it is a scripted
// `crash <index>`, not a scope sweep.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "globe/sim/simulator.hpp"
#include "globe/util/ids.hpp"
#include "globe/util/rng.hpp"
#include "globe/util/time.hpp"

namespace globe::fault {

using util::SimDuration;

enum class ActionKind : std::uint8_t {
  kCrash,
  kRecover,
  kLeave,
  kJoin,
  kPartition,
  kHeal,
  kChurn,
};

[[nodiscard]] const char* to_string(ActionKind k);

struct Action {
  ActionKind kind{};
  SimDuration at{};  // offset from scenario start
  std::size_t store = 0;                     // crash / recover / leave
  std::size_t count = 0;                     // join
  std::vector<std::size_t> side_a, side_b;   // partition (store indices)
  SimDuration period{}, until{}, downtime{};  // churn
  double fraction = 0.05;                    // churn
  // Scopes (sharded deployments): restrict the action to the stores of
  // one shard and/or the stores hosting one object, instead of naming
  // store indices. kInvalidShard / 0 = unscoped.
  ShardId shard = kInvalidShard;
  ObjectId object = 0;
  [[nodiscard]] bool scoped() const {
    return shard != kInvalidShard || object != 0;
  }
};

struct ScenarioScript {
  std::vector<Action> actions;

  /// Parses the text format above. Returns false and sets `error`
  /// (with a line number) on the first malformed line.
  static bool parse(std::string_view text, ScenarioScript* out,
                    std::string* error);

  /// Latest time any scripted action (including the recovery tail of a
  /// churn block) can fire. Harnesses run at least this long before
  /// settling.
  [[nodiscard]] SimDuration duration() const;
};

/// The deployment under test. Store indices follow the host's
/// construction order; the host decides what a partition means for the
/// nodes around its stores (clients co-partition with the store they are
/// bound to, well-known services stay on the primary's side).
class FaultHost {
 public:
  virtual ~FaultHost() = default;

  [[nodiscard]] virtual std::size_t store_count() const = 0;
  [[nodiscard]] virtual bool store_alive(std::size_t index) const = 0;
  [[nodiscard]] virtual bool store_is_primary(std::size_t index) const = 0;
  /// Shard the store serves (sharded hosts override; single-shard
  /// deployments live in shard 0).
  [[nodiscard]] virtual ShardId store_shard(std::size_t index) const {
    (void)index;
    return 0;
  }
  /// Whether the store hosts `object` (multi-object hosts override).
  [[nodiscard]] virtual bool store_hosts_object(std::size_t index,
                                                ObjectId object) const {
    (void)index;
    (void)object;
    return true;
  }

  virtual void crash_store(std::size_t index) = 0;
  virtual void recover_store(std::size_t index) = 0;
  virtual void leave_store(std::size_t index) = 0;
  virtual void join_stores(std::size_t count) = 0;
  virtual void partition(const std::vector<std::size_t>& side_a,
                         const std::vector<std::size_t>& side_b) = 0;
  virtual void heal() = 0;
};

struct ScenarioStats {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t leaves = 0;
  std::uint64_t joins = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t churn_ticks = 0;
};

class ScenarioEngine {
 public:
  ScenarioEngine(ScenarioScript script, FaultHost& host,
                 std::uint64_t seed = 1);

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Schedules every action on the simulator, relative to now. Actions
  /// are background events: they model the environment, so they never
  /// keep a run-to-quiescence alive by themselves. The engine must
  /// outlive the simulation.
  void arm(sim::Simulator& sim);

  /// Manual driving for runtimes without a simulator (loopback): applies
  /// every action due at or before `elapsed` since construction, in
  /// order. Monotonic: pass ever-increasing offsets.
  void advance_to(SimDuration elapsed);

  [[nodiscard]] const ScenarioStats& stats() const { return stats_; }
  [[nodiscard]] SimDuration duration() const { return script_duration_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  void apply(const Action& a);
  void dispatch(const Action& a, SimDuration at);
  [[nodiscard]] bool in_scope(const Action& a, std::size_t index) const;

  FaultHost& host_;
  util::Rng rng_;
  sim::Simulator* sim_ = nullptr;
  // Manual mode: actions not yet applied, keyed by their offset (µs).
  std::multimap<std::int64_t, Action> pending_;
  SimDuration script_duration_{};
  ScenarioStats stats_;
};

}  // namespace globe::fault
