// Web documents: the state of a distributed Web object.
//
// Section 2 of the paper: "A Web document consists of a collection of
// HTML pages, together with files for images, applets, etc., which
// jointly comprise the state of the distributed shared object."
//
// WebDocument is the semantics-object state: a set of named pages, each
// remembering which write produced it. Applying a WriteRecord mutates the
// document; snapshots support full-state coherence transfer.
//
// Delta snapshots: every mutation bumps a per-document monotonic version
// counter and stamps the touched page with it, and deletions leave page
// *tombstones* (the identity of the winning delete). A receiver that
// already holds most of the document can then be brought to the sender's
// exact state by shipping only the differing pages plus drop entries —
// either against the receiver's page-stamp summary (always exact) or
// against a version floor from a previous transfer of the same lineage
// (cheapest; falls back to full when the floor predates the tombstone
// horizon). Per-page encodings are cached, so a hot page is serialized
// once and the fragment shared across concurrent delta requesters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "globe/coherence/vector_clock.hpp"
#include "globe/coherence/write_id.hpp"
#include "globe/util/buffer.hpp"
#include "globe/web/write_record.hpp"

namespace globe::web {

struct Page {
  std::string content;
  std::string mime = "text/html";
  WriteId last_writer;           // WiD of the write that produced it
  std::uint64_t global_seq = 0;  // total-order position of that write
  std::uint64_t lamport = 0;     // LWW timestamp of that write
  std::int64_t updated_at_us = 0;

  friend bool operator==(const Page&, const Page&) = default;
};

/// Identity of the write that produced a page version. Two stores whose
/// stamps for a page match hold byte-identical copies of it (a WiD names
/// one immutable write), which is what lets delta snapshots skip it.
struct PageStamp {
  std::string page;
  WriteId writer;
  std::uint64_t lamport = 0;
  std::uint64_t global_seq = 0;

  void encode(util::Writer& w) const {
    w.str(page);
    writer.encode(w);
    w.varint(lamport);
    w.varint(global_seq);
  }

  static PageStamp decode(util::Reader& r) {
    PageStamp s;
    s.page = r.str();
    s.writer = coherence::WriteId::decode(r);
    s.lamport = r.varint();
    s.global_seq = r.varint();
    return s;
  }
};

/// Memory of a deletion: the identity of the winning delete write. Kept
/// so (a) a stale concurrent put cannot resurrect the page under
/// last-writer-wins once the delete record itself was compacted away,
/// and (b) delta snapshots can ship the deletion as a drop entry.
struct Tombstone {
  WriteId writer;
  std::uint64_t lamport = 0;
  std::uint64_t global_seq = 0;
  std::int64_t deleted_at_us = 0;
  std::uint64_t version = 0;  // local mutation stamp (never serialized)
};

/// Delta-encode accounting surfaced to the metrics sink.
struct DeltaStats {
  std::size_t pages_shipped = 0;
  std::size_t drops_shipped = 0;
};

class WebDocument {
 public:
  /// Applies a write record unconditionally (ordering was decided by the
  /// replication object). Returns false if the record was a no-op delete.
  bool apply(const WriteRecord& rec);

  /// Applies a record only if it wins last-writer-wins against the
  /// current page version (used by eventual coherence). Returns true if
  /// the document changed. Deletions are remembered as tombstones, which
  /// later puts must also beat — a page deleted here cannot be
  /// resurrected by a stale concurrent write arriving after the delete
  /// record was compacted out of the logs.
  bool apply_lww(const WriteRecord& rec);

  [[nodiscard]] std::optional<Page> get(const std::string& page) const;
  [[nodiscard]] bool has(const std::string& page) const {
    return pages_.find(page) != pages_.end();
  }
  [[nodiscard]] std::vector<std::string> page_names() const;
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Total content bytes; approximates document transfer size.
  [[nodiscard]] std::size_t content_bytes() const;

  /// Full-state snapshot (coherence transfer type = full). The encoding
  /// is cached and shared: repeated calls between mutations return the
  /// same immutable buffer, so N concurrent snapshot requesters (e.g. a
  /// cutover storm of behind-horizon replicas) cost one encode, not N.
  [[nodiscard]] util::SharedBuffer snapshot() const;

  /// Reference encoder: always re-encodes, bypassing the cache. Used by
  /// the cache fill and by equivalence tests as the uncached oracle.
  /// `mask_wall_clock` zeroes the per-page updated_at stamp: equivalence
  /// gates across transports use it because a different datagram schedule
  /// legitimately shifts simulated time without changing delivered state.
  [[nodiscard]] util::Buffer encode_snapshot(
      bool mask_wall_clock = false) const;

  void restore(util::BytesView snapshot);

  // ---- delta snapshots ------------------------------------------------

  /// Monotonic per-document mutation counter. Every state change bumps
  /// it; the touched page (or tombstone) is stamped with the new value.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Stamp summary of every live page, in page-name order. A requester
  /// sends this so the responder can encode exactly the difference.
  [[nodiscard]] std::vector<PageStamp> summarize() const;

  /// Encodes the pages (and drops) a receiver holding `have` is missing
  /// relative to this document. Applying the result via apply_delta()
  /// makes the receiver's pages byte-identical to this document's,
  /// regardless of how the receiver diverged. Always succeeds.
  [[nodiscard]] util::Buffer encode_delta(std::span<const PageStamp> have,
                                          DeltaStats* stats = nullptr) const;

  /// Floor fast path: encodes only pages and tombstones stamped after
  /// `floor` — exact when the receiver mirrors this document's lineage
  /// at `floor` and has not mutated since. Callers must check
  /// can_delta_since() first; a floor below the tombstone horizon can no
  /// longer prove which deletions the receiver missed.
  [[nodiscard]] util::Buffer encode_delta_since(
      std::uint64_t floor, DeltaStats* stats = nullptr) const;

  /// True when a floor delta can be served: the floor is within this
  /// document's version range and at or above the tombstone horizon
  /// (deletion knowledge below the horizon was discarded by restore()).
  /// Mirrors WriteLog::note_snapshot semantics: behind the horizon, only
  /// a full transfer is sound.
  [[nodiscard]] bool can_delta_since(std::uint64_t floor) const {
    return floor <= version_ && floor >= tombstone_floor_;
  }

  /// The tombstone horizon: deletion knowledge below this version was
  /// discarded by restore(). Exposed for the invariant monitors.
  [[nodiscard]] std::uint64_t tombstone_horizon() const {
    return tombstone_floor_;
  }

  /// Applies an encoded delta: shipped pages overwrite, drop entries
  /// erase and leave tombstones. The sender's document version (the
  /// receiver's next floor) travels alongside the delta, not inside it
  /// (StateTransfer::version) — one authoritative location.
  void apply_delta(util::BytesView delta);

  /// Deletion memory (tests / state_as_records).
  [[nodiscard]] const std::map<std::string, Tombstone>& tombstones() const {
    return tombstones_;
  }

  /// Stability-horizon tombstone GC: discards tombstones whose winning
  /// delete is covered by `horizon` — every live replica has applied the
  /// delete, so no stale concurrent put that it must outrank can still
  /// arrive. The tombstone horizon rises to the newest collected stamp,
  /// so encode_delta_since() keeps its refusal semantics: a floor from
  /// before the collection can no longer prove which deletions the
  /// receiver missed and falls back to a full transfer, exactly as after
  /// restore(). Returns how many tombstones were collected.
  std::size_t collect_tombstones(const coherence::VectorClock& horizon);

  /// Cached wire fragment of one live page (the per-page slice of the
  /// snapshot encoding). Encoded on first use after a mutation of that
  /// page; shared by reference across concurrent delta requesters.
  [[nodiscard]] util::SharedBuffer page_fragment(const std::string& page) const;

  /// Structural equality of page contents (used by convergence checks);
  /// deliberately ignores the snapshot cache, version stamps, and
  /// tombstones.
  friend bool operator==(const WebDocument& a, const WebDocument& b) {
    return a.pages_ == b.pages_;
  }

 private:
  struct PageMeta {
    std::uint64_t version = 0;    // mutation stamp of the live page
    util::SharedBuffer fragment;  // cached encode; null after mutation
  };

  /// Bookkeeping for a page mutation: bump the document version, stamp
  /// the page, drop its cached fragment and the snapshot cache.
  void touch(const std::string& page);
  void encode_page(util::Writer& w, const std::string& name,
                   const Page& p, bool mask_wall_clock = false) const;
  void append_fragment(util::Writer& w, const std::string& name,
                       const Page& p, const PageMeta& meta) const;
  void record_tombstone(const std::string& page, const WriteRecord& rec);

  std::map<std::string, Page> pages_;
  // Parallel per-page bookkeeping (version stamp + cached fragment).
  // Mutable: fragments fill lazily under const delta encodes.
  mutable std::unordered_map<std::string, PageMeta> meta_;
  std::map<std::string, Tombstone> tombstones_;
  std::uint64_t version_ = 0;
  // Versions below this lost their deletion memory (restore() replaces
  // the state wholesale and clears the tombstones); floor deltas from
  // below it must fall back to a full transfer.
  std::uint64_t tombstone_floor_ = 0;
  // Cached encoding of pages_; reset by every mutation. Copies of the
  // document share the cache (it is immutable); a copy's own mutation
  // only drops its own reference.
  mutable util::SharedBuffer snapshot_cache_;
};

}  // namespace globe::web
