// Web documents: the state of a distributed Web object.
//
// Section 2 of the paper: "A Web document consists of a collection of
// HTML pages, together with files for images, applets, etc., which
// jointly comprise the state of the distributed shared object."
//
// WebDocument is the semantics-object state: a set of named pages, each
// remembering which write produced it. Applying a WriteRecord mutates the
// document; snapshots support full-state coherence transfer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "globe/coherence/write_id.hpp"
#include "globe/util/buffer.hpp"
#include "globe/web/write_record.hpp"

namespace globe::web {

struct Page {
  std::string content;
  std::string mime = "text/html";
  WriteId last_writer;           // WiD of the write that produced it
  std::uint64_t global_seq = 0;  // total-order position of that write
  std::uint64_t lamport = 0;     // LWW timestamp of that write
  std::int64_t updated_at_us = 0;

  friend bool operator==(const Page&, const Page&) = default;
};

class WebDocument {
 public:
  /// Applies a write record unconditionally (ordering was decided by the
  /// replication object). Returns false if the record was a no-op delete.
  bool apply(const WriteRecord& rec);

  /// Applies a record only if it wins last-writer-wins against the
  /// current page version (used by eventual coherence). Returns true if
  /// the document changed.
  bool apply_lww(const WriteRecord& rec);

  [[nodiscard]] std::optional<Page> get(const std::string& page) const;
  [[nodiscard]] bool has(const std::string& page) const {
    return pages_.find(page) != pages_.end();
  }
  [[nodiscard]] std::vector<std::string> page_names() const;
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Total content bytes; approximates document transfer size.
  [[nodiscard]] std::size_t content_bytes() const;

  /// Full-state snapshot (coherence transfer type = full). The encoding
  /// is cached and shared: repeated calls between mutations return the
  /// same immutable buffer, so N concurrent snapshot requesters (e.g. a
  /// cutover storm of behind-horizon replicas) cost one encode, not N.
  [[nodiscard]] util::SharedBuffer snapshot() const;

  /// Reference encoder: always re-encodes, bypassing the cache. Used by
  /// the cache fill and by equivalence tests as the uncached oracle.
  [[nodiscard]] util::Buffer encode_snapshot() const;

  void restore(util::BytesView snapshot);

  /// Structural equality of page contents (used by convergence checks);
  /// deliberately ignores the snapshot cache.
  friend bool operator==(const WebDocument& a, const WebDocument& b) {
    return a.pages_ == b.pages_;
  }

 private:
  std::map<std::string, Page> pages_;
  // Cached encoding of pages_; reset by every mutation. Copies of the
  // document share the cache (it is immutable); a copy's own mutation
  // only drops its own reference.
  mutable util::SharedBuffer snapshot_cache_;
};

}  // namespace globe::web
