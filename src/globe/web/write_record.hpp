// Write records: the unit of coherence transfer.
//
// Every mutation of a Web document is captured as a WriteRecord tagged
// with its WiD, its dependency clock, the primary-assigned global
// sequence number (when the model has a primary), and a Lamport-style
// timestamp used for last-writer-wins merging under eventual coherence.
//
// The Table 1 "coherence transfer type" parameter maps onto how records
// travel: `partial` ships individual records, `full` ships a document
// snapshot, `notification` ships nothing but an outdated flag.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "globe/coherence/vector_clock.hpp"
#include "globe/coherence/write_id.hpp"
#include "globe/util/buffer.hpp"
#include "globe/util/time.hpp"

namespace globe::web {

using coherence::VectorClock;
using coherence::WriteId;

enum class WriteOp : std::uint8_t { kPut = 0, kDelete = 1 };

struct WriteRecord {
  WriteId wid;
  WriteOp op = WriteOp::kPut;
  std::string page;
  std::string content;  // empty for kDelete
  std::string mime = "text/html";
  VectorClock deps;             // causal / session dependencies
  std::uint64_t global_seq = 0;  // total-order position (0 = unassigned)
  std::uint64_t lamport = 0;     // LWW tie-break for eventual coherence
  std::int64_t issued_at_us = 0; // client issue time (staleness metrics)
  bool ordered = false;          // per-writer ordered application required
                                 // at every store (monotonic writes)
  // Transient (never serialized): endpoint key of the neighbour this
  // record arrived from, used to avoid reflecting it straight back.
  // 0 = originated locally (client write / seed).
  std::uint64_t transient_origin = 0;

  void encode(util::Writer& w) const {
    wid.encode(w);
    w.u8(static_cast<std::uint8_t>(op));
    w.str(page);
    w.str(content);
    w.str(mime);
    deps.encode(w);
    w.varint(global_seq);
    w.varint(lamport);
    w.i64(issued_at_us);
    w.boolean(ordered);
  }

  static WriteRecord decode(util::Reader& r) {
    WriteRecord rec;
    rec.wid = WriteId::decode(r);
    rec.op = static_cast<WriteOp>(r.u8());
    rec.page = r.str();
    rec.content = r.str();
    rec.mime = r.str();
    rec.deps = VectorClock::decode(r);
    rec.global_seq = r.varint();
    rec.lamport = r.varint();
    rec.issued_at_us = r.i64();
    rec.ordered = r.boolean();
    return rec;
  }

  /// Approximate wire size, used by traffic accounting and benches.
  [[nodiscard]] std::size_t approx_size() const {
    return 32 + page.size() + content.size() + mime.size() +
           16 * deps.size();
  }
};

inline void encode_records(util::Writer& w,
                           const std::vector<WriteRecord>& records) {
  w.varint(records.size());
  for (const auto& rec : records) rec.encode(w);
}

inline std::vector<WriteRecord> decode_records(util::Reader& r) {
  const std::uint64_t n = r.varint();
  std::vector<WriteRecord> records;
  records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    records.push_back(WriteRecord::decode(r));
  }
  return records;
}

}  // namespace globe::web
