// Shared record batches: the unit of zero-copy propagation fan-out.
//
// When a store propagates applied writes to its subscribers, every
// subscriber receives the same record payload. A RecordBatch captures
// that payload once — the records serialized back-to-back into a single
// immutable wire fragment — and is shared by reference across every
// subscriber: lazy queues hold shared_ptr segments instead of per-target
// record copies, and immediate push splices the pre-encoded bytes
// straight into each outgoing wire buffer. A write is therefore encoded
// exactly once no matter how many replicas it reaches.
//
// The fragment deliberately carries no record-count prefix, so several
// batches concatenate into one kUpdate body (encode_batches below emits
// the combined count, matching web::encode_records' wire layout).
#pragma once

#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "globe/util/assert.hpp"
#include "globe/util/buffer.hpp"
#include "globe/web/write_record.hpp"

namespace globe::web {

/// What a batch must materialize, decided by the propagation mode of
/// the store building it: partial update transfers splice the encoded
/// bytes, invalidate transfers read only the page list, and
/// notification/full transfers need neither (the batch then only marks
/// "this target has pending data").
struct BatchNeeds {
  bool wire = true;
  bool pages = true;
};

class RecordBatch {
 public:
  /// Captures `recs` in order. `origin` is the endpoint key the records
  /// arrived from (0 = local); fan-out uses it to avoid reflecting a
  /// batch straight back to the neighbour that sent it, so all records
  /// in one batch must share it.
  RecordBatch(std::span<const WriteRecord> recs, std::uint64_t origin,
              BatchNeeds needs = {})
      : count_(recs.size()), origin_(origin) {
    if (needs.wire) {
      util::Writer w;
      for (const WriteRecord& rec : recs) rec.encode(w);
      wire_ = w.take();
    }
    if (needs.pages) {
      std::set<std::string> distinct;
      for (const WriteRecord& rec : recs) distinct.insert(rec.page);
      pages_.assign(distinct.begin(), distinct.end());
    }
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  /// The encoded records, back-to-back, without a count prefix.
  [[nodiscard]] util::BytesView bytes() const { return util::BytesView(wire_); }
  [[nodiscard]] std::uint64_t origin() const { return origin_; }
  /// Distinct pages touched, sorted (invalidate fan-out).
  [[nodiscard]] const std::vector<std::string>& pages() const { return pages_; }

 private:
  util::Buffer wire_;
  std::size_t count_ = 0;
  std::uint64_t origin_ = 0;
  std::vector<std::string> pages_;
};

using RecordBatchPtr = std::shared_ptr<const RecordBatch>;

/// Emits a sequence of batches as one `encode_records`-compatible field:
/// the combined count followed by each batch's pre-encoded bytes.
inline void encode_batches(util::Writer& w,
                           std::span<const RecordBatchPtr> batches) {
  std::uint64_t total = 0;
  for (const RecordBatchPtr& b : batches) total += b->count();
  w.varint(total);
  for (const RecordBatchPtr& b : batches) {
    // A batch built with needs.wire=false has a count but no bytes;
    // splicing it here would silently emit a short kUpdate body.
    GLOBE_DCHECK_MSG(b->count() == 0 || !b->bytes().empty(),
                     "encoding a record batch captured without wire bytes");
    w.raw(b->bytes());
  }
}

/// Total records across a batch sequence.
[[nodiscard]] inline std::size_t batch_record_count(
    std::span<const RecordBatchPtr> batches) {
  std::size_t total = 0;
  for (const RecordBatchPtr& b : batches) total += b->count();
  return total;
}

}  // namespace globe::web
