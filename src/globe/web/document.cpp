#include "globe/web/document.hpp"

namespace globe::web {

bool WebDocument::apply(const WriteRecord& rec) {
  if (rec.op == WriteOp::kDelete) {
    const bool erased = pages_.erase(rec.page) > 0;
    if (erased) snapshot_cache_.reset();
    return erased;
  }
  snapshot_cache_.reset();
  Page& p = pages_[rec.page];
  p.content = rec.content;
  p.mime = rec.mime;
  p.last_writer = rec.wid;
  p.global_seq = rec.global_seq;
  p.lamport = rec.lamport;
  p.updated_at_us = rec.issued_at_us;
  return true;
}

bool WebDocument::apply_lww(const WriteRecord& rec) {
  auto it = pages_.find(rec.page);
  if (it != pages_.end()) {
    const Page& cur = it->second;
    // Higher Lamport timestamp wins; ties broken by writer id then seq so
    // that all replicas decide identically.
    const auto cur_key =
        std::tuple(cur.lamport, cur.last_writer.client, cur.last_writer.seq);
    const auto new_key =
        std::tuple(rec.lamport, rec.wid.client, rec.wid.seq);
    if (new_key <= cur_key) return false;
  }
  return apply(rec);
}

std::optional<Page> WebDocument::get(const std::string& page) const {
  auto it = pages_.find(page);
  if (it == pages_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> WebDocument::page_names() const {
  std::vector<std::string> names;
  names.reserve(pages_.size());
  for (const auto& [name, _] : pages_) names.push_back(name);
  return names;
}

std::size_t WebDocument::content_bytes() const {
  std::size_t total = 0;
  for (const auto& [_, p] : pages_) total += p.content.size();
  return total;
}

util::SharedBuffer WebDocument::snapshot() const {
  if (snapshot_cache_ == nullptr) {
    snapshot_cache_ = std::make_shared<const util::Buffer>(encode_snapshot());
  }
  return snapshot_cache_;
}

util::Buffer WebDocument::encode_snapshot() const {
  util::Writer w;
  w.varint(pages_.size());
  for (const auto& [name, p] : pages_) {
    w.str(name);
    w.str(p.content);
    w.str(p.mime);
    p.last_writer.encode(w);
    w.varint(p.global_seq);
    w.varint(p.lamport);
    w.i64(p.updated_at_us);
  }
  return w.take();
}

void WebDocument::restore(util::BytesView snapshot) {
  util::Reader r(snapshot);
  std::map<std::string, Page> pages;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    Page p;
    p.content = r.str();
    p.mime = r.str();
    p.last_writer = coherence::WriteId::decode(r);
    p.global_seq = r.varint();
    p.lamport = r.varint();
    p.updated_at_us = r.i64();
    pages.emplace(std::move(name), std::move(p));
  }
  r.expect_end();
  pages_ = std::move(pages);
  snapshot_cache_.reset();
}

}  // namespace globe::web
