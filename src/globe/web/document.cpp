#include "globe/web/document.hpp"

#include <algorithm>
#include <tuple>

#include "globe/util/assert.hpp"

namespace globe::web {

namespace {

[[nodiscard]] auto lww_key(std::uint64_t lamport, const WriteId& wid) {
  return std::tuple(lamport, wid.client, wid.seq);
}

}  // namespace

void WebDocument::touch(const std::string& page) {
  ++version_;
  PageMeta& m = meta_[page];
  m.version = version_;
  m.fragment.reset();
  snapshot_cache_.reset();
}

void WebDocument::record_tombstone(const std::string& page,
                                   const WriteRecord& rec) {
  Tombstone& t = tombstones_[page];
  if (lww_key(rec.lamport, rec.wid) >= lww_key(t.lamport, t.writer)) {
    t.writer = rec.wid;
    t.lamport = rec.lamport;
    t.global_seq = rec.global_seq;
    t.deleted_at_us = rec.issued_at_us;
  }
  t.version = ++version_;
}

bool WebDocument::apply(const WriteRecord& rec) {
  if (rec.op == WriteOp::kDelete) {
    const bool erased = pages_.erase(rec.page) > 0;
    // The deletion is remembered either way (a delete that raced ahead
    // of the put it kills must still win later), but only an actual
    // erase invalidates the snapshot cache — the page bytes are
    // untouched otherwise.
    record_tombstone(rec.page, rec);
    if (erased) {
      meta_.erase(rec.page);
      snapshot_cache_.reset();
    }
    return erased;
  }
  tombstones_.erase(rec.page);  // ordered apply: the page exists again
  touch(rec.page);
  Page& p = pages_[rec.page];
  p.content = rec.content;
  p.mime = rec.mime;
  p.last_writer = rec.wid;
  p.global_seq = rec.global_seq;
  p.lamport = rec.lamport;
  p.updated_at_us = rec.issued_at_us;
  return true;
}

bool WebDocument::apply_lww(const WriteRecord& rec) {
  // Higher Lamport timestamp wins; ties broken by writer id then seq so
  // that all replicas decide identically. A tombstone stands in for the
  // page it deleted: a put must also beat the delete that removed the
  // page, or a stale write arriving after the delete record was
  // compacted away would resurrect it.
  const auto new_key = lww_key(rec.lamport, rec.wid);
  auto it = pages_.find(rec.page);
  if (it != pages_.end()) {
    const Page& cur = it->second;
    if (new_key <= lww_key(cur.lamport, cur.last_writer)) return false;
  } else {
    auto tomb = tombstones_.find(rec.page);
    if (tomb != tombstones_.end() &&
        new_key <= lww_key(tomb->second.lamport, tomb->second.writer)) {
      return false;
    }
    if (rec.op == WriteOp::kDelete) {
      // Deleting an absent page: no state change, but the deletion
      // memory advances so the stronger delete keeps winning.
      record_tombstone(rec.page, rec);
      return false;
    }
  }
  return apply(rec);
}

std::size_t WebDocument::collect_tombstones(
    const coherence::VectorClock& horizon) {
  std::size_t collected = 0;
  for (auto it = tombstones_.begin(); it != tombstones_.end();) {
    if (horizon.covers(it->second.writer)) {
      // Raising the floor past the collected stamp keeps floor deltas
      // honest: a receiver whose floor predates this deletion must take
      // a full transfer, since the drop entry can no longer be encoded.
      tombstone_floor_ = std::max(tombstone_floor_, it->second.version);
      it = tombstones_.erase(it);
      ++collected;
    } else {
      ++it;
    }
  }
  return collected;
}

std::optional<Page> WebDocument::get(const std::string& page) const {
  auto it = pages_.find(page);
  if (it == pages_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> WebDocument::page_names() const {
  std::vector<std::string> names;
  names.reserve(pages_.size());
  for (const auto& [name, _] : pages_) names.push_back(name);
  return names;
}

std::size_t WebDocument::content_bytes() const {
  std::size_t total = 0;
  for (const auto& [_, p] : pages_) total += p.content.size();
  return total;
}

util::SharedBuffer WebDocument::snapshot() const {
  if (snapshot_cache_ == nullptr) {
    snapshot_cache_ = std::make_shared<const util::Buffer>(encode_snapshot());
  }
  return snapshot_cache_;
}

void WebDocument::encode_page(util::Writer& w, const std::string& name,
                              const Page& p, bool mask_wall_clock) const {
  w.str(name);
  w.str(p.content);
  w.str(p.mime);
  p.last_writer.encode(w);
  w.varint(p.global_seq);
  w.varint(p.lamport);
  w.i64(mask_wall_clock ? 0 : p.updated_at_us);
}

util::Buffer WebDocument::encode_snapshot(bool mask_wall_clock) const {
  util::Writer w;
  w.varint(pages_.size());
  for (const auto& [name, p] : pages_) {
    encode_page(w, name, p, mask_wall_clock);
  }
  return w.take();
}

void WebDocument::restore(util::BytesView snapshot) {
  util::Reader r(snapshot);
  std::map<std::string, Page> pages;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    Page p;
    p.content = r.str();
    p.mime = r.str();
    p.last_writer = coherence::WriteId::decode(r);
    p.global_seq = r.varint();
    p.lamport = r.varint();
    p.updated_at_us = r.i64();
    pages.emplace(std::move(name), std::move(p));
  }
  r.expect_end();
  pages_ = std::move(pages);
  // A full restore replaces the state wholesale: every page carries a
  // fresh stamp, and deletion memory from the old lineage is gone — the
  // tombstone horizon moves here, exactly like WriteLog::note_snapshot.
  ++version_;
  meta_.clear();
  for (const auto& [name, _] : pages_) meta_[name].version = version_;
  tombstones_.clear();
  tombstone_floor_ = version_;
  snapshot_cache_.reset();
}

// ---------------------------------------------------------------------
// Delta snapshots
// ---------------------------------------------------------------------

std::vector<PageStamp> WebDocument::summarize() const {
  std::vector<PageStamp> out;
  out.reserve(pages_.size());
  for (const auto& [name, p] : pages_) {
    out.push_back(PageStamp{name, p.last_writer, p.lamport, p.global_seq});
  }
  return out;
}

util::SharedBuffer WebDocument::page_fragment(const std::string& page) const {
  auto pit = pages_.find(page);
  if (pit == pages_.end()) return nullptr;
  PageMeta& m = meta_[page];
  if (m.fragment == nullptr) {
    util::Writer w;
    encode_page(w, page, pit->second);
    m.fragment = std::make_shared<const util::Buffer>(w.take());
  }
  return m.fragment;
}

void WebDocument::append_fragment(util::Writer& w, const std::string& name,
                                  const Page& p, const PageMeta& meta) const {
  if (meta.fragment == nullptr) {
    // Fill the cache in place so the next requester reuses the bytes.
    util::Writer frag;
    encode_page(frag, name, p);
    const_cast<PageMeta&>(meta).fragment =
        std::make_shared<const util::Buffer>(frag.take());
  }
  w.raw(util::BytesView(*meta.fragment));
}

util::Buffer WebDocument::encode_delta(std::span<const PageStamp> have,
                                       DeltaStats* stats) const {
  std::unordered_map<std::string_view, const PageStamp*> held;
  held.reserve(have.size());
  for (const PageStamp& s : have) held.emplace(s.page, &s);

  util::Writer w;
  // Pages the receiver lacks or holds at a different version.
  std::size_t shipped = 0;
  {
    util::Writer body;
    for (const auto& [name, p] : pages_) {
      auto it = held.find(name);
      if (it != held.end() && it->second->writer == p.last_writer &&
          it->second->lamport == p.lamport &&
          it->second->global_seq == p.global_seq) {
        continue;  // identical copy at the receiver
      }
      append_fragment(body, name, p, meta_[name]);
      ++shipped;
    }
    w.varint(shipped);
    w.raw(util::BytesView(body.view()));
  }
  // Drops: pages the receiver holds that no longer exist here. The
  // tombstone identity travels so the receiver records the deletion too.
  std::size_t drops = 0;
  {
    util::Writer body;
    for (const PageStamp& s : have) {
      if (pages_.find(s.page) != pages_.end()) continue;
      body.str(s.page);
      auto tomb = tombstones_.find(s.page);
      const Tombstone t =
          tomb != tombstones_.end() ? tomb->second : Tombstone{};
      t.writer.encode(body);
      body.varint(t.lamport);
      body.varint(t.global_seq);
      body.i64(t.deleted_at_us);
      ++drops;
    }
    w.varint(drops);
    w.raw(util::BytesView(body.view()));
  }
  if (stats != nullptr) {
    stats->pages_shipped = shipped;
    stats->drops_shipped = drops;
  }
  return w.take();
}

util::Buffer WebDocument::encode_delta_since(std::uint64_t floor,
                                             DeltaStats* stats) const {
  GLOBE_ASSERT_MSG(can_delta_since(floor),
                   "floor predates the tombstone horizon");
  util::Writer w;
  std::size_t shipped = 0;
  {
    util::Writer body;
    for (const auto& [name, p] : pages_) {
      const PageMeta& m = meta_[name];
      if (m.version <= floor) continue;
      append_fragment(body, name, p, m);
      ++shipped;
    }
    w.varint(shipped);
    w.raw(util::BytesView(body.view()));
  }
  std::size_t drops = 0;
  {
    util::Writer body;
    for (const auto& [name, t] : tombstones_) {
      if (t.version <= floor) continue;
      body.str(name);
      t.writer.encode(body);
      body.varint(t.lamport);
      body.varint(t.global_seq);
      body.i64(t.deleted_at_us);
      ++drops;
    }
    w.varint(drops);
    w.raw(util::BytesView(body.view()));
  }
  if (stats != nullptr) {
    stats->pages_shipped = shipped;
    stats->drops_shipped = drops;
  }
  return w.take();
}

void WebDocument::apply_delta(util::BytesView delta) {
  util::Reader r(delta);
  const std::uint64_t stamp = ++version_;
  const std::uint64_t n = r.varint();
  bool mutated = n > 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    Page p;
    p.content = r.str();
    p.mime = r.str();
    p.last_writer = coherence::WriteId::decode(r);
    p.global_seq = r.varint();
    p.lamport = r.varint();
    p.updated_at_us = r.i64();
    tombstones_.erase(name);
    PageMeta& m = meta_[name];
    m.version = stamp;
    m.fragment.reset();
    pages_[std::move(name)] = std::move(p);
  }
  const std::uint64_t d = r.varint();
  mutated = mutated || d > 0;
  for (std::uint64_t i = 0; i < d; ++i) {
    std::string name = r.str();
    Tombstone t;
    t.writer = coherence::WriteId::decode(r);
    t.lamport = r.varint();
    t.global_seq = r.varint();
    t.deleted_at_us = r.i64();
    t.version = stamp;
    pages_.erase(name);
    meta_.erase(name);
    tombstones_[std::move(name)] = t;
  }
  r.expect_end();
  if (mutated) snapshot_cache_.reset();
}

}  // namespace globe::web
