#include "globe/check/scenarios.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "globe/check/monitor.hpp"
#include "globe/coherence/checkers.hpp"
#include "globe/fault/scenario.hpp"
#include "globe/replication/testbed.hpp"
#include "globe/util/rng.hpp"

namespace globe::check {

namespace {

using coherence::ClientModel;
using coherence::ObjectModel;

constexpr ObjectId kObj = 1;

struct ChurnProfile {
  ObjectModel model{};
  bool pull = false;
  std::uint64_t jitter_ms = 0;
  std::uint64_t partition_at_ms = 0;
  std::uint64_t heal_at_ms = 0;
  bool churn_mirror = false;
  std::uint64_t crash_at_ms = 0;
  std::uint64_t recover_at_ms = 0;
};

// Everything the seed decides, derived up front in a fixed order so the
// fault schedule is identical for every op budget (shrinking the
// workload must not move the faults).
ChurnProfile derive_profile(std::uint64_t seed) {
  util::Rng rng(seed);
  ChurnProfile p;
  constexpr ObjectModel kModels[] = {
      ObjectModel::kSequential, ObjectModel::kPram, ObjectModel::kFifoPram,
      ObjectModel::kCausal,     ObjectModel::kEventual,
      ObjectModel::kEventual,  // second slot runs the pull variant
  };
  const std::uint64_t pick = rng.below(6);
  p.model = kModels[pick];
  p.pull = pick == 5;
  p.jitter_ms = rng.below(9);                       // 0..8ms on every hop
  p.partition_at_ms = 150 + rng.below(300);         // cut at 150..449ms
  p.heal_at_ms = p.partition_at_ms + 1500 + rng.below(1000);
  p.churn_mirror = rng.chance(0.5);
  p.crash_at_ms = p.heal_at_ms + 100 + rng.below(400);
  p.recover_at_ms = p.crash_at_ms + 300 + rng.below(300);
  return p;
}

std::string script_text(const ChurnProfile& p) {
  // Store indices follow construction order below: 0=primary,
  // 1-2=mirrors, 3-4=caches. Side B {2,4} loses the services quorum.
  std::string text = "at " + std::to_string(p.partition_at_ms) +
                     "ms partition 0,1,3|2,4\n" + "at " +
                     std::to_string(p.heal_at_ms) + "ms heal\n";
  if (p.churn_mirror) {
    // Churn the object-initiated mirror, not a cache: a client-initiated
    // cache only refreshes on client demand, so crashing it after the
    // workload drains would leave it legitimately stale forever.
    text += "at " + std::to_string(p.crash_at_ms) + "ms crash 2\n";
    text += "at " + std::to_string(p.recover_at_ms) + "ms recover 2\n";
  }
  return text;
}

void note(std::vector<std::string>& failures, bool ok, std::string what) {
  if (!ok) failures.push_back(std::move(what));
}

}  // namespace

ScenarioVerdict run_partition_churn(std::uint64_t seed,
                                    std::uint64_t max_ops) {
  namespace repl = globe::replication;
  const ChurnProfile profile = derive_profile(seed);

  ScenarioVerdict verdict;
  std::vector<std::string> failures;

  // Monitor trips fail the run instead of aborting the process; the
  // capture spans the whole deployment lifetime.
  ScopedTripCapture trips;
  {
    repl::TestbedOptions opts;
    opts.seed = seed;
    opts.enable_membership = true;
    opts.membership_heartbeat = sim::SimDuration::millis(50);
    opts.failure_timeout = sim::SimDuration::millis(200);
    opts.wan.base_latency = sim::SimDuration::millis(5);
    opts.wan.jitter = sim::SimDuration::millis(profile.jitter_ms);
    opts.client_timeout = sim::SimDuration::millis(250);
    opts.client_retries = 1;
    repl::Testbed bed(opts);

    core::ReplicationPolicy policy;
    policy.model = profile.model;
    policy.object_outdate_reaction = core::OutdateReaction::kDemand;
    if (profile.model == ObjectModel::kCausal ||
        profile.model == ObjectModel::kEventual) {
      policy.write_set = core::WriteSet::kMultiple;
    }
    if (profile.pull) {
      policy.initiative = core::TransferInitiative::kPull;
      policy.lazy_period = sim::SimDuration::millis(50);
    }

    auto& primary = bed.add_primary(kObj, policy);
    for (int i = 0; i < 6; ++i) {
      primary.seed("page" + std::to_string(i) + ".html", "seed");
    }
    auto& mirror_a =
        bed.add_store(kObj, naming::StoreClass::kObjectInitiated, policy);
    auto& mirror_b =
        bed.add_store(kObj, naming::StoreClass::kObjectInitiated, policy);
    bed.settle();
    auto& cache_a = bed.add_store(kObj, naming::StoreClass::kClientInitiated,
                                  policy, mirror_a.address());
    auto& cache_b = bed.add_store(kObj, naming::StoreClass::kClientInitiated,
                                  policy, mirror_b.address());
    bed.settle();

    // WFR needs a cross-writer apply order; only the sequential total
    // order and the causal orderer provide one (see
    // partition_matrix_test.cpp for the full rationale).
    auto session = ClientModel::kMonotonicWrites |
                   ClientModel::kReadYourWrites | ClientModel::kMonotonicReads;
    if (profile.model == ObjectModel::kSequential ||
        profile.model == ObjectModel::kCausal) {
      session = session | ClientModel::kWritesFollowReads;
    }
    auto& client_a = bed.add_client(kObj, session, cache_a.address());
    auto& client_b = bed.add_client(kObj, session, cache_b.address());
    bed.run_for(sim::SimDuration::millis(100));

    fault::ScenarioScript script;
    std::string error;
    if (!fault::ScenarioScript::parse(script_text(profile), &script, &error)) {
      verdict.ok = false;
      verdict.failure = "scenario script rejected: " + error;
      return verdict;
    }
    repl::TestbedFaultHost host(bed);
    fault::ScenarioEngine engine(script, host, seed);
    engine.arm(bed.sim());

    // Workload spanning before, during, and after the partition. Ops
    // are counted in issue order so an op budget truncates a prefix of
    // this exact sequence.
    std::uint64_t issued = 0;
    const auto budget_left = [&] { return issued < max_ops; };
    for (int i = 0; i < 30 && budget_left(); ++i) {
      const std::string tick = std::to_string(i);
      if (budget_left()) {
        client_a.write("page0.html", "a" + tick, [](repl::WriteResult) {});
        ++issued;
      }
      if (budget_left()) {
        client_b.write("page1.html", "b" + tick, [](repl::WriteResult) {});
        ++issued;
      }
      if (budget_left()) {
        client_a.read("page2.html", [](repl::ReadResult) {});
        ++issued;
      }
      if (budget_left()) {
        client_b.read("page2.html", [](repl::ReadResult) {});
        ++issued;
      }
      bed.run_for(sim::SimDuration::millis(100));
    }
    verdict.ops_issued = issued;

    // Run past the last scripted fault, let heartbeats re-admit the
    // minority side and resyncs drain, then settle to quiescence.
    bed.run_for(engine.duration() + sim::SimDuration::seconds(3));
    bed.settle();

    note(failures, bed.converged(kObj),
         std::string("diverged: replicas disagree with the primary (model=") +
             coherence::to_string(profile.model) + ")");

    const auto object_verdict =
        coherence::check_object_model(bed.history(), profile.model);
    note(failures, object_verdict.ok,
         "object-model checker: " + object_verdict.summary());

    const std::vector<coherence::SessionSpec> specs = {
        {client_a.id(), session}, {client_b.id(), session}};
    for (const auto& result :
         coherence::check_sessions(bed.history(), specs)) {
      note(failures, result.ok, "session checker: " + result.summary());
    }
  }

  for (const TripReport& report : trips.reports()) {
    failures.push_back("monitor trip: " + report.str());
  }

  if (!failures.empty()) {
    verdict.ok = false;
    verdict.failure = failures.front();
    if (failures.size() > 1) {
      verdict.failure +=
          " (+" + std::to_string(failures.size() - 1) + " more)";
    }
  }
  return verdict;
}

ScenarioLookup find_scenario(std::string_view name) {
  ScenarioLookup out;
  if (name == "partition_churn") {
    out.found = true;
    out.explorer = ScheduleExplorer("partition_churn", run_partition_churn,
                                    kPartitionChurnDefaultOps);
  }
  return out;
}

std::vector<std::string> scenario_names() { return {"partition_churn"}; }

}  // namespace globe::check
