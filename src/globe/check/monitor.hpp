// Online protocol invariant monitors (checked builds).
//
// The coherence::History checkers are post-hoc: they certify only the
// executions a harness happens to sample, after the run is over. The
// monitors here move the load-bearing protocol invariants INTO the
// execution: compiled-in hooks on the replication, membership,
// placement, and flow-control hot paths that crash-with-context the
// instant an invariant breaks, in every test and Testbed run, not just
// the scripted scenarios.
//
// Invariant catalogue (see docs/checking.md for the full table):
//
//   gseq        per-object applied total-order position never regresses;
//               under the sequential model it advances contiguously
//               (+1 per applied record) between state adoptions
//   gseq-floor  only sequential-model stores claim a nonzero total-order
//               fetch floor (PRAM-family gseqs are max-semantics and
//               must not filter away missed records)
//   mw-filter   per (store, object, writer) applied write sequence is
//               strictly increasing — nothing regresses past the
//               monotonic-writes gate
//   view-epoch  the membership service publishes strictly increasing
//               epochs per (scope, shard); a store's applied view epoch
//               and a client's watched epoch never move backwards
//   placement   placement-state version and layout epoch are monotonic
//   window      credit conservation on every windowed channel:
//               frames issued == frames acked + frames in flight
//               (next_seq - ack_base == |inflight|), in-flight never
//               exceeds the window, receiver-granted credit never
//               exceeds the window, pending queues stay bounded
//   parked      per-subscriber parked lazy batches respect the
//               flow-control drop deadline
//   horizon     a floor delta below the tombstone horizon (or beyond
//               the document version) must be refused — the serving
//               store has lost the deletion knowledge to make it exact
//   session     a client session's write sequence and read floors
//               (read-set total, sequential gseq floor) are monotonic
//
// Every monitor keeps a per-key ring buffer of recent transitions, so a
// trip dumps the offending history, not just a stack. Monitors are
// compiled in only under GLOBE_CHECKED (the default build; release
// benches configure -DGLOBE_CHECKED=OFF) and are enabled at runtime by
// default; bench harnesses may check::set_enabled(false).
//
// Components report observations through the free-function hooks below,
// keyed by an owner pointer (the component instance), and call
// check::release(owner) from their destructor so a later allocation at
// the same address starts clean. Hooks are thread-safe (the registry
// has its own mutex and never calls back into the reporting component).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "globe/util/ids.hpp"

namespace globe::check {

/// What a monitor saw when an invariant broke: which monitor, for which
/// key, why, and the ring buffer of recent transitions leading up to it.
struct TripReport {
  std::string monitor;
  std::string key;
  std::string message;
  std::string context;  // owner stamp: store id + view epoch (may be "")
  std::string history;  // formatted ring-buffer dump, oldest first

  [[nodiscard]] std::string str() const;
};

/// Runtime switch (monitors compiled in but disabled: hooks return
/// immediately). Enabled by default.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Total invariant trips since process start (or the last handler that
/// chose to keep running).
[[nodiscard]] std::uint64_t trip_count();

/// Replaces the trip handler. The default handler prints the report to
/// stderr and aborts. A test handler that returns normally resumes the
/// run with the monitor re-anchored on the violating observation (so one
/// corruption yields one trip, not a cascade). Pass nullptr to restore
/// the default.
using TripHandler = std::function<void(const TripReport&)>;
void set_trip_handler(TripHandler handler);

/// Secondary observer invoked on EVERY trip, before the handler and
/// regardless of which handler is installed. The observability layer
/// uses it to annotate the trace and dump the flight recorder; unlike
/// the handler it must return (it cannot suppress the trip). Pass
/// nullptr to remove.
using TripObserver = std::function<void(const TripReport&)>;
void set_trip_observer(TripObserver observer);

/// All trip dumps flow through one serialized sink: concurrent trips
/// from different stores emit whole reports, never interleaved lines.
/// The default sink writes to stderr; a harness may redirect (file,
/// collector). Pass nullptr to restore stderr.
using DumpSink = std::function<void(const std::string&)>;
void set_dump_sink(DumpSink sink);

/// Emits one dump atomically through the configured sink (the default
/// trip handler uses this; harness code may reuse it for its own dumps
/// so they serialize against trip output).
void emit_dump(const std::string& text);

/// Stamps the owner's component context (store id, applied view epoch)
/// into every subsequent TripReport for monitors keyed under `owner`.
/// StoreEngine calls this at construction and on every view adoption.
void note_owner_context(const void* owner, StoreId store,
                        std::uint64_t view_epoch);

/// RAII trip capture for tests and the schedule explorer: installs a
/// collecting handler on construction, restores the previous behaviour
/// on destruction.
class ScopedTripCapture {
 public:
  ScopedTripCapture();
  ~ScopedTripCapture();

  ScopedTripCapture(const ScopedTripCapture&) = delete;
  ScopedTripCapture& operator=(const ScopedTripCapture&) = delete;

  [[nodiscard]] const std::vector<TripReport>& reports() const {
    return *reports_;
  }
  [[nodiscard]] bool tripped() const { return !reports_->empty(); }

 private:
  std::shared_ptr<std::vector<TripReport>> reports_;
};

/// Drops every monitor keyed under `owner` (component destructors; also
/// used by WindowedMulticast::reset_peer to re-anchor a reset channel).
void release(const void* owner);

// ---------------------------------------------------------------------
// Hooks. All are cheap no-ops when disabled; compiled out entirely
// without GLOBE_CHECKED via the GLOBE_CHECK_HOOK macro below.
// ---------------------------------------------------------------------

/// StoreEngine: the object's applied gseq moved to `gseq` by applying a
/// record. `sequential` demands contiguity (+1) between adoptions.
void on_gseq_apply(const void* owner, StoreId store, ObjectId object,
                   bool sequential, std::uint64_t gseq);

/// StoreEngine: the object adopted a state transfer at (clock total,
/// gseq). Re-anchors the gseq and per-writer monitors: adoption may
/// jump floors forward (never backwards).
void on_state_adoption(const void* owner, StoreId store, ObjectId object,
                       std::uint64_t gseq);

/// StoreEngine: the total-order floor this store claims on a fetch.
void on_fetch_floor(const void* owner, StoreId store, ObjectId object,
                    bool sequential, std::uint64_t floor);

/// StoreEngine: one record from `writer` with sequence `seq` was applied
/// to the object's document.
void on_writer_apply(const void* owner, StoreId store, ObjectId object,
                     ClientId writer, std::uint64_t seq);

/// MembershipService: a view of (scope, shard) is being published at
/// `epoch` (must be strictly increasing per subgroup).
void on_view_publish(const void* owner, std::uint64_t scope, ShardId shard,
                     std::uint64_t epoch);

/// StoreEngine / ClientBinding: a replica view at `epoch` was applied.
void on_view_adopt(const void* owner, const char* role, std::uint64_t id,
                   std::uint64_t epoch);

/// PlacementServer / PlacementCache: placement state moved to
/// (version, layout_epoch). Both must be monotonic.
void on_placement_state(const void* owner, std::uint64_t version,
                        std::uint64_t layout_epoch);

/// WindowedMulticast: one tx channel's accounting after a mutation.
/// `channel` keys the monitor (stable per peer channel).
struct WindowChannelState {
  std::uint64_t next_seq = 0;
  std::uint64_t ack_base = 0;
  std::size_t inflight = 0;
  std::size_t pending = 0;
  std::uint32_t credit = 0;
  std::size_t window_size = 0;
  std::size_t max_queue = 0;
};
void on_window_channel(const void* owner, const void* channel,
                       std::uint64_t local_key, std::uint64_t peer_key,
                       const WindowChannelState& st);

/// StoreEngine: parked lazy batches for one paused subscriber. `bound`
/// is the configured drop deadline (0 = unbounded).
void on_parked_batches(const void* owner, StoreId store, std::uint64_t peer_key,
                       std::size_t depth, std::size_t bound);

/// StoreEngine: a state-transfer request with floor mode was served.
/// `refused` = the store fell back to a full transfer. Serving a floor
/// delta below the tombstone horizon (or beyond the version) trips.
void on_delta_serve(const void* owner, StoreId store, ObjectId object,
                    std::uint64_t floor, std::uint64_t horizon,
                    std::uint64_t version, bool refused);

/// ClientBinding: a session's monotonic floors after an operation
/// completed. `write_seq` is the WiD sequence, `read_total` the
/// read-set clock total, `gseq_floor` the sequential-model floor.
void on_session_floors(const void* owner, ClientId client, ObjectId object,
                       std::uint64_t write_seq, std::uint64_t read_total,
                       std::uint64_t gseq_floor);

}  // namespace globe::check

// Call-site gate: compiled out (arguments unevaluated) without
// GLOBE_CHECKED, so release benches pay nothing for the hooks.
#if defined(GLOBE_CHECKED) && GLOBE_CHECKED
#define GLOBE_CHECK_HOOK(call)            \
  do {                                    \
    if (::globe::check::enabled()) {      \
      ::globe::check::call;               \
    }                                     \
  } while (false)
#else
#define GLOBE_CHECK_HOOK(call) \
  do {                         \
  } while (false)
#endif
