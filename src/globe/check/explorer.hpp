// Deterministic schedule explorer.
//
// A Scenario is a deterministic function of (seed, op budget): it builds
// a Testbed deployment, derives the schedule knobs — message jitter,
// fault timings, workload interleaving — from a util::Rng(seed), runs a
// bounded workload, and folds three verdict sources into one pass/fail:
//
//   * the online invariant monitors (check/monitor.hpp), captured with
//     ScopedTripCapture so a trip fails the run instead of aborting,
//   * the post-hoc coherence checkers (object model + session
//     guarantees) over the run's recorded history,
//   * convergence of the surviving replica set.
//
// The ScheduleExplorer drives a scenario across N seeds, ascending from
// `first_seed`, so the first failure it reports is already the minimal
// failing seed. On failure it then shrinks the workload: a binary
// search for the shortest op prefix that still reproduces the failure
// (each probe is a full deterministic re-run — the scenario's fault
// schedule depends only on the seed, so truncating the workload never
// perturbs the environment). The result carries a one-line repro
// command for the `schedule_explorer` CLI tool.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace globe::check {

/// Outcome of one scenario execution.
struct ScenarioVerdict {
  bool ok = true;
  /// Empty when ok; otherwise the first failure plus a tally of the
  /// rest ("monitor trip: ...", "object-model checker: ...", ...).
  std::string failure;
  /// Operations actually issued (<= the requested budget: a scenario
  /// may run out of workload before the budget does).
  std::uint64_t ops_issued = 0;
};

/// A deterministic scenario: same (seed, max_ops) => same verdict.
/// `max_ops` is the exact operation budget; 0 runs the pure fault
/// schedule with no client workload at all.
using Scenario =
    std::function<ScenarioVerdict(std::uint64_t seed, std::uint64_t max_ops)>;

struct ExploreOptions {
  /// Number of seeds to scan, ascending from `first_seed`.
  std::uint64_t seeds = 200;
  std::uint64_t first_seed = 1;
  /// Op budget per run; 0 uses the scenario's default budget.
  std::uint64_t max_ops = 0;
  /// Shrink the failing run to its minimal op prefix before reporting.
  bool shrink = true;
  /// Optional progress sink (one line per milestone).
  std::function<void(const std::string&)> progress;
};

struct ExploreResult {
  /// Scenario executions performed, including shrink probes.
  std::uint64_t runs = 0;
  bool found_failure = false;
  /// Smallest failing seed (the scan is ascending, so the first hit is
  /// minimal by construction).
  std::uint64_t failing_seed = 0;
  /// Smallest op budget that still reproduces the failure at that seed.
  std::uint64_t minimal_ops = 0;
  /// Verdict text of the minimal repro.
  std::string failure;
  /// One-line CLI command that replays the minimal failing run.
  std::string repro;
};

class ScheduleExplorer {
 public:
  /// `name` keys the repro command's --scenario= flag; `default_ops`
  /// is the budget used when ExploreOptions.max_ops is 0.
  ScheduleExplorer(std::string name, Scenario scenario,
                   std::uint64_t default_ops);

  /// Runs the scan (and shrink, if a failure surfaces). Deterministic:
  /// same scenario + options => same result.
  [[nodiscard]] ExploreResult explore(const ExploreOptions& opts = {}) const;

  /// One replay of (seed, max_ops); the budget is exact (0 = pure
  /// fault schedule). This is what the repro command executes.
  [[nodiscard]] ScenarioVerdict replay(std::uint64_t seed,
                                       std::uint64_t max_ops) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t default_ops() const { return default_ops_; }

 private:
  void shrink(std::uint64_t seed, ExploreResult& res,
              const ExploreOptions& opts) const;

  std::string name_;
  Scenario scenario_;
  std::uint64_t default_ops_;
};

}  // namespace globe::check
