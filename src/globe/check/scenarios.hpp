// Canned explorer scenarios.
//
// Each scenario is a deterministic function of (seed, op budget) — see
// explorer.hpp for the contract. The seed picks a coherence profile and
// perturbs the schedule (message jitter, partition timing, cache churn,
// workload phasing); the budget truncates the client workload so the
// explorer can shrink a failing run to its minimal op prefix.
//
// The registry maps CLI names (schedule_explorer --scenario=) to
// ready-built explorers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "globe/check/explorer.hpp"

namespace globe::check {

/// Partition + churn smoke scenario: primary, two mirrors, a cache under
/// each mirror, two session-guarantee clients. The seed chooses the
/// coherence model (sequential / PRAM / FIFO-PRAM / causal / eventual /
/// eventual-pull), the WAN jitter, when the partition cuts the minority
/// side off, how long it lasts, and whether a cache additionally
/// crash-recovers after the heal. Fails on any monitor trip, checker
/// violation, or failure to converge.
[[nodiscard]] ScenarioVerdict run_partition_churn(std::uint64_t seed,
                                                  std::uint64_t max_ops);

/// Default op budget of run_partition_churn (the shrink upper bound).
inline constexpr std::uint64_t kPartitionChurnDefaultOps = 120;

/// Explorer for a registered scenario name, or nullptr-equivalent
/// (found=false) if unknown.
struct ScenarioLookup {
  bool found = false;
  ScheduleExplorer explorer{"", nullptr, 0};
};
[[nodiscard]] ScenarioLookup find_scenario(std::string_view name);

/// Registered scenario names, for --list and error messages.
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace globe::check
