#include "globe/check/monitor.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace globe::check {

namespace {

// -------------------------------------------------------------- rings

/// One recorded transition: a tag plus up to four values, formatted only
/// when a trip needs the dump (recording must stay cheap on hot paths).
struct Transition {
  const char* tag = nullptr;
  std::uint64_t v[4] = {0, 0, 0, 0};
};

constexpr std::size_t kRingCapacity = 16;

struct Ring {
  Transition entries[kRingCapacity];
  std::size_t next = 0;
  std::size_t count = 0;

  void record(const char* tag, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0, std::uint64_t d = 0) {
    entries[next] = Transition{tag, {a, b, c, d}};
    next = (next + 1) % kRingCapacity;
    if (count < kRingCapacity) ++count;
  }

  [[nodiscard]] std::string dump() const {
    std::string out;
    const std::size_t start = (next + kRingCapacity - count) % kRingCapacity;
    for (std::size_t i = 0; i < count; ++i) {
      const Transition& t = entries[(start + i) % kRingCapacity];
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  [%2zu] %s %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                    "\n",
                    i, t.tag, t.v[0], t.v[1], t.v[2], t.v[3]);
      out += line;
    }
    return out;
  }
};

// ------------------------------------------------------------ monitors

/// Last-seen floors for one (store, object) replication state.
struct GseqState {
  bool seen = false;
  std::uint64_t gseq = 0;
  bool adopted = false;  // last move was a state adoption (jump allowed)
  Ring ring;
};

struct WriterState {
  std::map<ClientId, std::uint64_t> floors;
  Ring ring;
};

struct EpochState {
  bool seen = false;
  std::uint64_t epoch = 0;
  Ring ring;
};

struct PlacementState {
  bool seen = false;
  std::uint64_t version = 0;
  std::uint64_t layout_epoch = 0;
  Ring ring;
};

struct WindowState {
  Ring ring;
};

struct SessionState {
  bool seen = false;
  std::uint64_t write_seq = 0;
  std::uint64_t read_total = 0;
  std::uint64_t gseq_floor = 0;
  Ring ring;
};

/// Everything monitored under one owner pointer.
struct OwnerState {
  std::map<std::uint64_t, GseqState> gseq;          // by object
  std::map<std::uint64_t, WriterState> writers;     // by object
  std::map<std::pair<std::uint64_t, std::uint64_t>, EpochState> epochs;
  PlacementState placement;
  std::map<const void*, WindowState> windows;       // by channel
  std::map<std::uint64_t, SessionState> sessions;   // by object
  std::map<std::uint64_t, Ring> parked;             // by peer key
  Ring deltas;
  std::string context;  // component stamp (store id + view epoch)
};

struct Registry {
  std::mutex mu;
  std::unordered_map<const void*, OwnerState> owners;
  TripHandler handler;  // empty = default print+abort
  TripObserver observer;
  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> trips{0};
  // Dump emission is serialized separately from the monitor registry:
  // the sink may be slow (file I/O) and must not block hot-path hooks,
  // only other dumps.
  std::mutex dump_mu;
  DumpSink dump_sink;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

/// Formats + dispatches one violation. Called with the registry lock
/// held; the observer and handler run outside it (they may destroy
/// testbeds, install handlers, or abort).
void trip(std::unique_lock<std::mutex>& lock, const void* owner,
          const char* monitor, std::string key, std::string message,
          const Ring& ring) {
  Registry& r = registry();
  r.trips.fetch_add(1, std::memory_order_relaxed);
  TripReport report{monitor, std::move(key), std::move(message),
                    r.owners[owner].context, ring.dump()};
  TripHandler handler = r.handler;
  TripObserver observer = r.observer;
  lock.unlock();
  if (observer) observer(report);
  if (handler) {
    handler(report);
    return;
  }
  emit_dump(report.str());
  std::abort();
}

std::string key_store_object(StoreId store, ObjectId object) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "store=%u object=%" PRIu64, store, object);
  return buf;
}

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string TripReport::str() const {
  std::string out = "GLOBE_CHECKED invariant violation\n";
  out += "  monitor: " + monitor + "\n";
  out += "  key:     " + key + "\n";
  if (!context.empty()) out += "  where:   " + context + "\n";
  out += "  what:    " + message + "\n";
  out += "  recent transitions (oldest first):\n";
  out += history;
  return out;
}

bool enabled() {
  return registry().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  registry().enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trip_count() {
  return registry().trips.load(std::memory_order_relaxed);
}

void set_trip_handler(TripHandler handler) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.handler = std::move(handler);
}

ScopedTripCapture::ScopedTripCapture()
    : reports_(std::make_shared<std::vector<TripReport>>()) {
  auto sink = reports_;
  set_trip_handler([sink](const TripReport& r) { sink->push_back(r); });
}

ScopedTripCapture::~ScopedTripCapture() { set_trip_handler(nullptr); }

void set_trip_observer(TripObserver observer) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.observer = std::move(observer);
}

void set_dump_sink(DumpSink sink) {
  Registry& r = registry();
  std::lock_guard lock(r.dump_mu);
  r.dump_sink = std::move(sink);
}

void emit_dump(const std::string& text) {
  Registry& r = registry();
  std::lock_guard lock(r.dump_mu);
  if (r.dump_sink) {
    r.dump_sink(text);
    return;
  }
  std::fputs(text.c_str(), stderr);
  std::fflush(stderr);
}

void note_owner_context(const void* owner, StoreId store,
                        std::uint64_t view_epoch) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.owners[owner].context =
      fmt("store=%u view_epoch=%" PRIu64, store, view_epoch);
}

void release(const void* owner) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.owners.erase(owner);
}

// ---------------------------------------------------------------------
// StoreEngine hooks
// ---------------------------------------------------------------------

void on_gseq_apply(const void* owner, StoreId store, ObjectId object,
                   bool sequential, std::uint64_t gseq) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  GseqState& st = r.owners[owner].gseq[object];
  st.ring.record("apply", gseq, sequential ? 1 : 0);
  if (st.seen && gseq < st.gseq) {
    auto msg = fmt("applied gseq regressed %" PRIu64 " -> %" PRIu64, st.gseq,
                   gseq);
    const Ring ring = st.ring;
    st.gseq = gseq;  // re-anchor so one corruption = one trip
    st.adopted = false;
    trip(lock, owner, "gseq", key_store_object(store, object), std::move(msg), ring);
    return;
  }
  if (sequential && st.seen && !st.adopted && gseq != st.gseq + 1) {
    auto msg = fmt("sequential gseq skipped %" PRIu64 " -> %" PRIu64
                   " (contiguity requires +1 between state adoptions)",
                   st.gseq, gseq);
    const Ring ring = st.ring;
    st.seen = true;
    st.gseq = gseq;
    st.adopted = false;
    trip(lock, owner, "gseq", key_store_object(store, object), std::move(msg), ring);
    return;
  }
  st.seen = true;
  st.gseq = gseq;
  st.adopted = false;
}

void on_state_adoption(const void* owner, StoreId store, ObjectId object,
                       std::uint64_t gseq) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  OwnerState& os = r.owners[owner];
  GseqState& st = os.gseq[object];
  st.ring.record("adopt", gseq);
  if (st.seen && gseq < st.gseq) {
    auto msg = fmt("state adoption regressed gseq %" PRIu64 " -> %" PRIu64,
                   st.gseq, gseq);
    const Ring ring = st.ring;
    st.gseq = gseq;
    trip(lock, owner, "gseq", key_store_object(store, object), std::move(msg), ring);
    return;
  }
  st.seen = true;
  st.gseq = gseq;
  st.adopted = true;
  // Adoption replaces the document + clocks wholesale: the per-writer
  // floors re-anchor on whatever the adopted clock covers (the next
  // apply per writer re-seeds them).
  os.writers[object].floors.clear();
}

void on_fetch_floor(const void* owner, StoreId store, ObjectId object,
                    bool sequential, std::uint64_t floor) {
  if (sequential || floor == 0) return;
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  GseqState& st = r.owners[owner].gseq[object];
  st.ring.record("floor", floor, sequential ? 1 : 0);
  trip(lock, owner, "gseq-floor", key_store_object(store, object),
       fmt("non-sequential store claimed total-order fetch floor %" PRIu64
           " (max-semantics gseq must not filter missed records)",
           floor),
       st.ring);
}

void on_writer_apply(const void* owner, StoreId store, ObjectId object,
                     ClientId writer, std::uint64_t seq) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  WriterState& st = r.owners[owner].writers[object];
  st.ring.record("writer-apply", writer, seq);
  auto [it, fresh] = st.floors.try_emplace(writer, seq);
  if (!fresh) {
    if (seq <= it->second) {
      auto msg = fmt("writer %u sequence regressed past the MW filter: "
                     "applied seq %" PRIu64 " after %" PRIu64,
                     writer, seq, it->second);
      const Ring ring = st.ring;
      it->second = seq;
      trip(lock, owner, "mw-filter", key_store_object(store, object), std::move(msg),
           ring);
      return;
    }
    it->second = seq;
  }
}

// ---------------------------------------------------------------------
// Membership / placement hooks
// ---------------------------------------------------------------------

void on_view_publish(const void* owner, std::uint64_t scope, ShardId shard,
                     std::uint64_t epoch) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  EpochState& st = r.owners[owner].epochs[{scope, shard}];
  st.ring.record("publish", epoch);
  if (st.seen && epoch <= st.epoch) {
    auto msg = fmt("published view epoch did not advance: %" PRIu64
                   " after %" PRIu64,
                   epoch, st.epoch);
    const Ring ring = st.ring;
    st.epoch = epoch;
    trip(lock, owner, "view-epoch",
         fmt("scope=%" PRIu64 " shard=%u (publisher)", scope, shard),
         std::move(msg), ring);
    return;
  }
  st.seen = true;
  st.epoch = epoch;
}

void on_view_adopt(const void* owner, const char* role, std::uint64_t id,
                   std::uint64_t epoch) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  EpochState& st = r.owners[owner].epochs[{0, 0}];
  st.ring.record("adopt", epoch);
  if (st.seen && epoch < st.epoch) {
    auto msg = fmt("applied view epoch rolled back %" PRIu64 " -> %" PRIu64,
                   st.epoch, epoch);
    const Ring ring = st.ring;
    st.epoch = epoch;
    trip(lock, owner, "view-epoch", fmt("%s=%" PRIu64, role, id), std::move(msg),
         ring);
    return;
  }
  st.seen = true;
  st.epoch = epoch;
}

void on_placement_state(const void* owner, std::uint64_t version,
                        std::uint64_t layout_epoch) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  PlacementState& st = r.owners[owner].placement;
  st.ring.record("state", version, layout_epoch);
  if (st.seen && (version < st.version || layout_epoch < st.layout_epoch)) {
    auto msg = fmt("placement state regressed: version %" PRIu64 " -> %" PRIu64
                   ", layout epoch %" PRIu64 " -> %" PRIu64,
                   st.version, version, st.layout_epoch, layout_epoch);
    const Ring ring = st.ring;
    st.version = version;
    st.layout_epoch = layout_epoch;
    trip(lock, owner, "placement", fmt("placement@%p", owner), std::move(msg), ring);
    return;
  }
  st.seen = true;
  st.version = version;
  st.layout_epoch = layout_epoch;
}

// ---------------------------------------------------------------------
// Flow-control hooks
// ---------------------------------------------------------------------

void on_window_channel(const void* owner, const void* channel,
                       std::uint64_t local_key, std::uint64_t peer_key,
                       const WindowChannelState& st) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  WindowState& ws = r.owners[owner].windows[channel];
  ws.ring.record("channel", st.next_seq, st.ack_base, st.inflight, st.pending);
  const char* what = nullptr;
  std::string detail;
  if (st.ack_base > st.next_seq) {
    what = "window";
    detail = fmt("ack base %" PRIu64 " beyond next seq %" PRIu64
                 " (forged cumulative ack?)",
                 st.ack_base, st.next_seq);
  } else if (st.next_seq - st.ack_base != st.inflight) {
    what = "window";
    detail = fmt("credit conservation broken: issued %" PRIu64
                 " != acked %" PRIu64 " + in-flight %zu",
                 st.next_seq, st.ack_base, st.inflight);
  } else if (st.inflight > st.window_size) {
    what = "window";
    detail = fmt("in-flight frames %zu exceed window %zu", st.inflight,
                 st.window_size);
  } else if (st.credit > st.window_size) {
    what = "window";
    detail = fmt("granted credit %u exceeds window %zu (forged grant?)",
                 st.credit, st.window_size);
  } else if (st.pending > st.max_queue) {
    what = "window";
    detail = fmt("pending queue %zu exceeds bound %zu", st.pending,
                 st.max_queue);
  }
  if (what != nullptr) {
    const Ring ring = ws.ring;
    // Re-anchor: drop the channel's monitor so the (corrupt) state does
    // not retrip on every subsequent frame.
    r.owners[owner].windows.erase(channel);
    trip(lock, owner, what,
         fmt("channel %" PRIu64 " -> %" PRIu64, local_key, peer_key),
         std::move(detail), ring);
  }
}

void on_parked_batches(const void* owner, StoreId store, std::uint64_t peer_key,
                       std::size_t depth, std::size_t bound) {
  if (bound == 0) return;
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  Ring& ring = r.owners[owner].parked[peer_key];
  ring.record("parked", depth, bound);
  if (depth > bound) {
    const Ring copy = ring;
    r.owners[owner].parked.erase(peer_key);
    trip(lock, owner, "parked",
         fmt("store=%u subscriber=%" PRIu64, store, peer_key),
         fmt("parked lazy batches %zu exceed the drop deadline %zu", depth,
             bound),
         copy);
  }
}

// ---------------------------------------------------------------------
// Delta-snapshot / session hooks
// ---------------------------------------------------------------------

void on_delta_serve(const void* owner, StoreId store, ObjectId object,
                    std::uint64_t floor, std::uint64_t horizon,
                    std::uint64_t version, bool refused) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  Ring& ring = r.owners[owner].deltas;
  ring.record(refused ? "refused" : "served", floor, horizon, version);
  if (!refused && (floor < horizon || floor > version)) {
    const Ring copy = ring;
    trip(lock, owner, "horizon", key_store_object(store, object),
         fmt("floor delta served below the tombstone horizon: floor %" PRIu64
             ", horizon %" PRIu64 ", version %" PRIu64
             " (deletion knowledge was discarded)",
             floor, horizon, version),
         copy);
  }
}

void on_session_floors(const void* owner, ClientId client, ObjectId object,
                       std::uint64_t write_seq, std::uint64_t read_total,
                       std::uint64_t gseq_floor) {
  Registry& r = registry();
  std::unique_lock lock(r.mu);
  SessionState& st = r.owners[owner].sessions[object];
  st.ring.record("floors", write_seq, read_total, gseq_floor);
  if (st.seen && (write_seq < st.write_seq || read_total < st.read_total ||
                  gseq_floor < st.gseq_floor)) {
    auto msg = fmt("session floors regressed: writes %" PRIu64 " -> %" PRIu64
                   ", read total %" PRIu64 " -> %" PRIu64 ", gseq %" PRIu64
                   " -> %" PRIu64,
                   st.write_seq, write_seq, st.read_total, read_total,
                   st.gseq_floor, gseq_floor);
    const Ring ring = st.ring;
    st.write_seq = write_seq;
    st.read_total = read_total;
    st.gseq_floor = gseq_floor;
    trip(lock, owner, "session",
         fmt("client=%u object=%" PRIu64, client, object), std::move(msg),
         ring);
    return;
  }
  st.seen = true;
  st.write_seq = write_seq;
  st.read_total = read_total;
  st.gseq_floor = gseq_floor;
}

}  // namespace globe::check
