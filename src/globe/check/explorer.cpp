#include "globe/check/explorer.hpp"

#include <utility>

namespace globe::check {

namespace {

std::string repro_line(const std::string& name, std::uint64_t seed,
                       std::uint64_t ops) {
  return "./build/schedule_explorer --scenario=" + name +
         " --seed=" + std::to_string(seed) + " --ops=" + std::to_string(ops);
}

}  // namespace

ScheduleExplorer::ScheduleExplorer(std::string name, Scenario scenario,
                                   std::uint64_t default_ops)
    : name_(std::move(name)),
      scenario_(std::move(scenario)),
      default_ops_(default_ops) {}

ScenarioVerdict ScheduleExplorer::replay(std::uint64_t seed,
                                         std::uint64_t max_ops) const {
  return scenario_(seed, max_ops);
}

ExploreResult ScheduleExplorer::explore(const ExploreOptions& opts) const {
  ExploreResult res;
  const std::uint64_t budget = opts.max_ops != 0 ? opts.max_ops : default_ops_;
  for (std::uint64_t i = 0; i < opts.seeds; ++i) {
    const std::uint64_t seed = opts.first_seed + i;
    const ScenarioVerdict v = scenario_(seed, budget);
    ++res.runs;
    if (v.ok) {
      if (opts.progress && (i + 1) % 25 == 0) {
        opts.progress("seeds " + std::to_string(opts.first_seed) + ".." +
                      std::to_string(seed) + " clean");
      }
      continue;
    }
    res.found_failure = true;
    res.failing_seed = seed;
    res.failure = v.failure;
    // The scenario may have exhausted its workload below the budget;
    // shrink from what actually ran.
    res.minimal_ops = v.ops_issued != 0 ? v.ops_issued : budget;
    if (opts.progress) {
      opts.progress("seed " + std::to_string(seed) + " FAILED: " + v.failure);
    }
    if (opts.shrink && res.minimal_ops > 0) shrink(seed, res, opts);
    res.repro = repro_line(name_, seed, res.minimal_ops);
    return res;
  }
  return res;
}

void ScheduleExplorer::shrink(std::uint64_t seed, ExploreResult& res,
                              const ExploreOptions& opts) const {
  // Does the pure fault schedule (no workload) already fail? Then the
  // ops prefix is irrelevant.
  {
    const ScenarioVerdict v = scenario_(seed, 0);
    ++res.runs;
    if (!v.ok) {
      res.minimal_ops = 0;
      res.failure = v.failure;
      return;
    }
  }
  // Binary search for the smallest failing budget. Invariant: `hi`
  // fails, `lo` passes. Failure monotonicity in the prefix length is an
  // assumption (standard delta debugging); if it does not hold, `hi` is
  // still a genuine failing budget, just maybe not the global minimum.
  std::uint64_t lo = 0;
  std::uint64_t hi = res.minimal_ops;
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const ScenarioVerdict v = scenario_(seed, mid);
    ++res.runs;
    if (v.ok) {
      lo = mid;
    } else {
      hi = mid;
      res.failure = v.failure;
    }
    if (opts.progress) {
      opts.progress("shrink seed " + std::to_string(seed) + ": ops in (" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
  }
  res.minimal_ops = hi;
}

}  // namespace globe::check
