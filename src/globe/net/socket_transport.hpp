// Real socket transport: UDP datagrams with a TCP fallback lane.
//
// One SocketHost per process owns a UDP socket (the fast path: every
// datagram is [SocketFrame header][payload], sent with scatter-gather so
// send_shared never copies the payload) and a TCP listener (the bulk
// lane: payloads too large for one datagram — state transfers — travel
// as length-prefixed frames over lazily-established connections).
//
// Globe addresses are (node, port) pairs a kernel sockaddr does not
// carry, so every frame names its source and destination endpoints and
// the host demultiplexes to the bound Transport by destination address.
// Routing is explicit: add_route(node, endpoint) maps a globe node to an
// IP host + UDP/TCP port pair (the multi-process example derives ports
// from a base + node id).
//
// UDP gives no delivery or ordering guarantee — exactly the paper's
// Section 4.2 unreliable communication object. Run the windowed
// multicast layer on top (windowed_factory) for flow control and
// retransmission, and drive WindowedMulticast::tick periodically for
// tail-loss recovery.
//
// Construction degrades gracefully: if the kernel refuses sockets
// (sandboxes), ok() is false and every send is a counted drop, so tests
// can skip instead of fail.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "globe/net/framing.hpp"
#include "globe/net/transport.hpp"

namespace globe::net {

/// Where a globe node lives on the IP network.
struct SocketEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t udp_port = 0;
  std::uint16_t tcp_port = 0;
};

struct SocketHostOptions {
  std::string bind_host = "127.0.0.1";
  std::uint16_t udp_port = 0;  // 0 = kernel-assigned (see udp_port())
  std::uint16_t tcp_port = 0;  // 0 = kernel-assigned (see tcp_port())
  /// Frames whose header+payload exceed this travel over TCP instead of
  /// UDP. Kept under the classic 64 KiB datagram ceiling with margin.
  std::size_t max_datagram = 56 * 1024;
};

struct SocketHostStats {
  std::uint64_t udp_sent = 0;
  std::uint64_t udp_received = 0;
  std::uint64_t tcp_sent = 0;
  std::uint64_t tcp_received = 0;
  std::uint64_t send_errors = 0;     // kernel send failures (incl. no socket)
  std::uint64_t unroutable = 0;      // destination node has no route
  std::uint64_t unknown_endpoint = 0;  // frame for an unbound address
  std::uint64_t decode_errors = 0;   // malformed frames / streams
};

class SocketHost {
 public:
  explicit SocketHost(SocketHostOptions options = {});
  ~SocketHost();

  SocketHost(const SocketHost&) = delete;
  SocketHost& operator=(const SocketHost&) = delete;

  /// False when the kernel refused the sockets (sandboxed environment);
  /// the host is then inert and sends count as errors.
  [[nodiscard]] bool ok() const { return ok_; }

  /// Actual bound ports (resolves kernel-assigned 0 requests).
  [[nodiscard]] std::uint16_t udp_port() const { return udp_port_; }
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Maps a globe node to its IP endpoint. Thread-safe; replaces any
  /// existing route (a restarted process may come back on new ports).
  void add_route(NodeId node, SocketEndpoint ep);

  /// Creates a Transport bound to `local`; frames addressed to it are
  /// delivered on the host's receive threads. The transport unbinds
  /// itself on destruction and must not outlive the host.
  [[nodiscard]] std::unique_ptr<Transport> create_transport(
      const Address& local, MessageHandler handler);

  [[nodiscard]] SocketHostStats stats() const;

 private:
  friend class SocketTransport;

  void bind_endpoint(const Address& at, MessageHandler handler);
  void unbind_endpoint(const Address& at);

  /// Routes one frame: UDP when it fits, TCP otherwise.
  void send_frame(const Address& from, const Address& to, bool background,
                  BytesView payload);
  /// Hands a decoded frame to the bound endpoint (handler runs without
  /// host locks held).
  void deliver(const Address& from, const Address& to, BytesView payload);

  void udp_recv_loop();
  void tcp_accept_loop();
  void tcp_conn_loop(int fd);
  /// One outbound TCP connection. Each peer has its own lock so a slow
  /// connect or stalled write to one node never blocks bulk sends to the
  /// others; fd < 0 means "not connected, dial on next send".
  struct TcpConn {
    std::mutex mu;
    int fd = -1;
  };

  /// The connection slot for a node (created on demand). Only the map
  /// lookup holds tcp_mu_; connecting and writing lock the slot itself.
  std::shared_ptr<TcpConn> tcp_conn_for(NodeId node);
  /// Dials `ep` and stores the socket in `conn` (caller holds conn.mu);
  /// returns the fd, or -1 on failure.
  int tcp_connect_locked(TcpConn& conn, const SocketEndpoint& ep);

  SocketHostOptions options_;
  bool ok_ = false;
  int udp_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;

  mutable std::mutex mu_;  // routes, handlers, stats
  std::unordered_map<NodeId, SocketEndpoint> routes_;
  std::unordered_map<Address, MessageHandler> handlers_;
  SocketHostStats stats_;

  std::mutex tcp_mu_;  // guards the connection map only, never held for I/O
  std::unordered_map<NodeId, std::shared_ptr<TcpConn>> tcp_conns_;

  std::atomic<bool> stopping_{false};
  std::thread udp_thread_;
  std::thread accept_thread_;

  /// Inbound connection threads, reaped by the accept loop once their
  /// connection loop exits (done flag) so churn does not grow the vector
  /// for the host's lifetime.
  struct ConnThread {
    std::shared_ptr<std::atomic<bool>> done;
    std::thread thread;
  };
  std::mutex conn_threads_mu_;
  std::vector<ConnThread> conn_threads_;
};

/// Transport endpoint on a SocketHost. The payload of send_shared is
/// handed to the kernel via scatter-gather (header iovec + payload
/// iovec) — no serialization copy on the fast path.
class SocketTransport final : public Transport {
 public:
  SocketTransport(SocketHost& host, Address local, MessageHandler handler)
      : host_(host), local_(local) {
    host_.bind_endpoint(local_, std::move(handler));
  }

  ~SocketTransport() override { host_.unbind_endpoint(local_); }

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Plain send uses the base default (move-wrap, no byte copy).
  void send_shared(const Address& to, util::SharedBuffer payload) override {
    host_.send_frame(local_, to, /*background=*/false, BytesView(*payload));
  }

  void send_shared_background(const Address& to,
                              util::SharedBuffer payload) override {
    host_.send_frame(local_, to, /*background=*/true, BytesView(*payload));
  }
  void send_background(const Address& to, Buffer payload) override {
    host_.send_frame(local_, to, /*background=*/true, BytesView(payload));
  }

  [[nodiscard]] Address local_address() const override { return local_; }

 private:
  SocketHost& host_;
  Address local_;
};

}  // namespace globe::net
