// Wire framing for the transport layer.
//
// Two independent codecs live here, both built on util::Writer/Reader so
// every malformed input surfaces as util::CodecError instead of garbage:
//
//  * Flow frames — the windowed multicast protocol's datagrams. They
//    travel as ordinary transport payloads next to plain envelopes; the
//    first byte disambiguates (MsgType values are small, flow frames
//    claim 0xF1/0xF2). A data frame carries a per-channel sequence
//    number and one or more coalesced sub-datagrams; an ack frame
//    carries a cumulative ack, a selective-retransmit list, and the
//    receiver's credit grant.
//
//  * Socket frames — the UDP/TCP host header of net::SocketTransport.
//    Globe addresses are (node, port) pairs that a kernel sockaddr does
//    not carry, so every datagram names its source and destination
//    endpoints. On TCP the stream is chopped into length-prefixed
//    frames by TcpFrameAssembler, which tolerates arbitrary
//    fragmentation and rejects oversized or corrupt prefixes.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "globe/net/address.hpp"
#include "globe/util/buffer.hpp"

namespace globe::net {

using util::Buffer;
using util::BytesView;
using util::CodecError;
using util::Reader;
using util::Writer;

// ---------------------------------------------------------------------
// Flow frames (windowed multicast)
// ---------------------------------------------------------------------

/// First-byte discriminator. Plain envelopes start with a MsgType
/// (currently < 0x40); anything at or above kFlowFrameFloor belongs to
/// the flow-control layer and never reaches the communication object.
inline constexpr std::uint8_t kFlowFrameFloor = 0xF0;
inline constexpr std::uint8_t kDataFrameKind = 0xF1;
inline constexpr std::uint8_t kAckFrameKind = 0xF2;

[[nodiscard]] inline bool is_flow_frame(BytesView payload) {
  return !payload.empty() &&
         static_cast<std::uint8_t>(payload[0]) >= kFlowFrameFloor;
}

/// Windowed data frame: seq + coalesced sub-datagrams.
struct DataFrame {
  /// Flag bits (third header byte).
  static constexpr std::uint8_t kFlagAckNow = 0x01;
  static constexpr std::uint8_t kFlagReset = 0x02;

  std::uint64_t seq = 0;
  /// Solicit an immediate ack (window about to fill, or end of burst).
  bool ack_now = false;
  /// First frame of a (re)started stream: the receiver adopts `seq` as
  /// its expected position instead of nacking the gap — the sender no
  /// longer holds anything older (fresh channel, or a channel reset
  /// after an eviction; the application layer resyncs state itself).
  bool reset = false;
  /// Borrowed views into the frame buffer, one per coalesced datagram.
  std::vector<BytesView> payloads;

  /// Encodes header + payloads into one wire buffer.
  static void encode(Writer& w, std::uint64_t seq, bool ack_now, bool reset,
                     const std::vector<BytesView>& bodies) {
    w.u8(kDataFrameKind);
    w.u64(seq);
    w.u8(static_cast<std::uint8_t>((ack_now ? kFlagAckNow : 0) |
                                   (reset ? kFlagReset : 0)));
    w.varint(bodies.size());
    for (const BytesView& b : bodies) w.bytes(b);
  }

  /// Borrow-decodes; the returned views alias `wire`.
  static DataFrame decode(BytesView wire) {
    Reader r(wire);
    DataFrame f;
    if (r.u8() != kDataFrameKind) throw CodecError("not a data frame");
    f.seq = r.u64();
    const std::uint8_t flags = r.u8();
    if ((flags & ~(kFlagAckNow | kFlagReset)) != 0) {
      throw CodecError("invalid data-frame flags");
    }
    f.ack_now = (flags & kFlagAckNow) != 0;
    f.reset = (flags & kFlagReset) != 0;
    const std::uint64_t count = r.varint();
    if (count == 0) throw CodecError("empty data frame");
    if (count > wire.size()) throw CodecError("data-frame count exceeds frame");
    f.payloads.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) f.payloads.push_back(r.bytes());
    r.expect_end();
    return f;
  }
};

/// Credit/ack frame: everything below `cumulative` is delivered;
/// `missing` asks for selective retransmission of still-needed frames
/// the receiver knows it is missing; `credit` is the window the receiver
/// grants from `cumulative` on.
struct AckFrame {
  std::uint64_t cumulative = 0;
  std::uint32_t credit = 0;
  std::vector<std::uint64_t> missing;

  void encode(Writer& w) const {
    w.u8(kAckFrameKind);
    w.u64(cumulative);
    w.u32(credit);
    w.varint(missing.size());
    for (std::uint64_t seq : missing) w.u64(seq);
  }

  static AckFrame decode(BytesView wire) {
    Reader r(wire);
    AckFrame a;
    if (r.u8() != kAckFrameKind) throw CodecError("not an ack frame");
    a.cumulative = r.u64();
    a.credit = r.u32();
    const std::uint64_t count = r.varint();
    // Division, not multiplication: `count * 8` wraps for attacker-chosen
    // counts >= 2^61 and would reach reserve() as a std::length_error.
    if (count > r.remaining() / 8) {
      throw CodecError("ack missing-list exceeds frame");
    }
    a.missing.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) a.missing.push_back(r.u64());
    r.expect_end();
    return a;
  }
};

// ---------------------------------------------------------------------
// Socket frames (UDP/TCP host header)
// ---------------------------------------------------------------------

inline constexpr std::uint32_t kSocketFrameMagic = 0x47'4C'42'31;  // "GLB1"
inline constexpr std::uint8_t kSocketFlagBackground = 0x01;

/// Host-level header of every socket datagram / TCP frame.
struct SocketFrame {
  Address from;
  Address to;
  bool background = false;
  BytesView payload;  // borrowed from the receive buffer

  static constexpr std::size_t kHeaderSize = 4 + 1 + (4 + 2) * 2;

  static void encode_header(Writer& w, const Address& from, const Address& to,
                            bool background) {
    w.u32(kSocketFrameMagic);
    w.u8(background ? kSocketFlagBackground : 0);
    w.u32(from.node);
    w.u16(from.port);
    w.u32(to.node);
    w.u16(to.port);
  }

  /// Encodes a header into a fixed stack-friendly buffer (for iovec
  /// scatter-gather sends that never copy the payload).
  [[nodiscard]] static Buffer header_bytes(const Address& from,
                                           const Address& to,
                                           bool background) {
    Writer w;
    w.reserve(kHeaderSize);
    encode_header(w, from, to, background);
    return w.take();
  }

  static SocketFrame decode(BytesView wire) {
    Reader r(wire);
    SocketFrame f;
    if (r.u32() != kSocketFrameMagic) throw CodecError("bad socket magic");
    const std::uint8_t flags = r.u8();
    if ((flags & ~kSocketFlagBackground) != 0) {
      throw CodecError("unknown socket-frame flags");
    }
    f.background = (flags & kSocketFlagBackground) != 0;
    f.from.node = r.u32();
    f.from.port = r.u16();
    f.to.node = r.u32();
    f.to.port = r.u16();
    f.payload = r.rest();
    return f;
  }
};

/// Reassembles length-prefixed frames from an arbitrarily fragmented
/// byte stream (the TCP fallback lane). Each frame on the stream is
/// [u32 length][length bytes]; a length of zero or above `max_frame`
/// poisons the stream (CodecError) — a corrupt prefix would otherwise
/// desynchronise every following frame.
class TcpFrameAssembler {
 public:
  explicit TcpFrameAssembler(std::size_t max_frame = 64 * 1024 * 1024)
      : max_frame_(max_frame) {}

  /// Appends raw stream bytes and extracts every complete frame.
  std::vector<Buffer> feed(BytesView bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    std::vector<Buffer> frames;
    std::size_t pos = 0;
    while (buf_.size() - pos >= 4) {
      std::uint32_t len = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(
                   static_cast<std::uint8_t>(buf_[pos + i]))
               << (8 * i);
      }
      if (len == 0) throw CodecError("zero-length tcp frame");
      if (len > max_frame_) throw CodecError("oversized tcp frame");
      if (buf_.size() - pos - 4 < len) break;  // incomplete tail
      frames.emplace_back(buf_.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                          buf_.begin() +
                              static_cast<std::ptrdiff_t>(pos + 4 + len));
      pos += 4 + len;
    }
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
    return frames;
  }

  /// Bytes buffered awaiting a complete frame.
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

  /// Prefixes `frame` with its length for the stream.
  static void encode_prefix(Writer& w, std::size_t frame_len) {
    w.u32(static_cast<std::uint32_t>(frame_len));
  }

 private:
  std::size_t max_frame_;
  Buffer buf_;
};

}  // namespace globe::net
