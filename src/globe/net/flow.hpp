// Flow-control surface the replication layer polls.
//
// The windowed multicast layer (net/windowed_multicast.hpp) tracks
// per-peer send queues and raises backpressure state changes; a
// StoreEngine consumes them at its own pace (it polls from the thread
// that drives propagation, so no flow callback ever re-enters engine
// state from a transport thread). A null FlowControl* means the runtime
// is not windowed and every peer is always writable.
#pragma once

#include <cstdint>
#include <vector>

#include "globe/net/address.hpp"

namespace globe::net {

class FlowControl {
 public:
  enum class PeerEvent : std::uint8_t {
    kPaused = 0,   // peer's send queue crossed the high watermark
    kResumed = 1,  // peer drained back below the low watermark
    kEvicted = 2,  // peer made no progress while its queue was full
  };

  struct Event {
    Address peer;
    PeerEvent what{};
  };

  virtual ~FlowControl() = default;

  /// Drains the backpressure state changes of `local`'s peers since the
  /// last call. Thread-safe; events are delivered exactly once.
  [[nodiscard]] virtual std::vector<Event> poll_events(
      const Address& local) = 0;

  /// Current backpressure state of one peer channel.
  [[nodiscard]] virtual bool peer_paused(const Address& local,
                                         const Address& peer) const = 0;

  /// Clears any stale backpressure verdict for a peer (fresh
  /// subscription after an eviction): its queue empties, pause/evict
  /// flags drop, and the next data frame restarts the stream.
  virtual void reset_peer(const Address& local, const Address& peer) = 0;
};

}  // namespace globe::net
