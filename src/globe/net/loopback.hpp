// Threaded in-process message router.
//
// LoopbackRouter provides a "real" (non-simulated) transport: messages
// are queued and delivered by a dedicated dispatcher thread, preserving
// global FIFO order. It exists to demonstrate that the object model and
// replication protocols are independent of the simulator (the paper's
// prototype ran over real TCP/IP); integration tests and one example run
// over it.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "globe/net/transport.hpp"

namespace globe::net {

class LoopbackRouter {
 public:
  LoopbackRouter();
  ~LoopbackRouter();

  LoopbackRouter(const LoopbackRouter&) = delete;
  LoopbackRouter& operator=(const LoopbackRouter&) = delete;

  /// Registers a handler for an endpoint. Thread-safe. Asserts if the
  /// endpoint is already bound (same contract as sim::Network::bind);
  /// rebinding after unbind is supported.
  void bind(const Address& at, MessageHandler handler);

  /// Removes an endpoint. Thread-safe.
  void unbind(const Address& at);

  /// Enqueues a message for asynchronous delivery. Thread-safe.
  void post(const Address& from, const Address& to, Buffer payload);

  /// Blocks until the queue is empty and the dispatcher is idle.
  void drain();

 private:
  struct Pending {
    Address from;
    Address to;
    Buffer payload;
  };

  void dispatch_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Pending> queue_;
  std::unordered_map<Address, MessageHandler> handlers_;
  bool stopping_ = false;
  bool busy_ = false;
  std::thread dispatcher_;
};

/// Transport endpoint on a LoopbackRouter.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(LoopbackRouter& router, Address local,
                    MessageHandler handler)
      : router_(router), local_(local) {
    router_.bind(local_, std::move(handler));
  }

  ~LoopbackTransport() override { router_.unbind(local_); }

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  void send(const Address& to, Buffer payload) override {
    router_.post(local_, to, std::move(payload));
  }

  [[nodiscard]] Address local_address() const override { return local_; }

 private:
  LoopbackRouter& router_;
  Address local_;
};

}  // namespace globe::net
