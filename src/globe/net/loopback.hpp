// Threaded in-process message router.
//
// LoopbackRouter provides a "real" (non-simulated) transport: messages
// are queued and delivered by a dedicated dispatcher thread, preserving
// global FIFO order. It exists to demonstrate that the object model and
// replication protocols are independent of the simulator (the paper's
// prototype ran over real TCP/IP); integration tests and one example run
// over it.
//
// The queue holds shared immutable datagrams (shared_ptr<const Buffer>):
// a unicast send wraps its buffer once, and a multicast fan-out enqueues
// N references to ONE encoded wire buffer instead of N owned copies
// (post_shared). Fault injection mirrors sim::Network: node-pair
// partitions and crashed nodes drop matching messages at dispatch, so
// the fault scenario engine drives this runtime too.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "globe/net/transport.hpp"

namespace globe::net {

class LoopbackRouter {
 public:
  LoopbackRouter();
  ~LoopbackRouter();

  LoopbackRouter(const LoopbackRouter&) = delete;
  LoopbackRouter& operator=(const LoopbackRouter&) = delete;

  /// Registers a handler for an endpoint. Thread-safe. Asserts if the
  /// endpoint is already bound (same contract as sim::Network::bind);
  /// rebinding after unbind is supported.
  void bind(const Address& at, MessageHandler handler);

  /// Removes an endpoint. Thread-safe.
  void unbind(const Address& at);

  /// Enqueues a message for asynchronous delivery. Thread-safe.
  void post(const Address& from, const Address& to, Buffer payload);

  /// Enqueues a shared datagram: the queue holds a reference, not a
  /// copy, so one buffer can be posted to many destinations. Thread-safe.
  void post_shared(const Address& from, const Address& to,
                   util::SharedBuffer payload);

  /// Fault injection (same vocabulary as sim::Network). Thread-safe;
  /// affects messages dispatched after the call.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  void heal_all();
  void set_node_down(NodeId n, bool down);

  /// What a full queue does to a new post.
  enum class QueueFullPolicy : std::uint8_t {
    kDropNewest = 0,  // drop the incoming message, count it
    kBlock = 1,       // block the poster until the dispatcher drains
  };

  /// Bounds the router queue. `max_depth` of 0 (the default) means
  /// unbounded; the high watermark is tracked either way. A post from
  /// the dispatcher thread itself (a handler sending) never blocks —
  /// blocking there would deadlock the only drainer — it overflows to
  /// drop-newest instead. Thread-safe.
  void set_queue_limit(std::size_t max_depth,
                       QueueFullPolicy policy = QueueFullPolicy::kDropNewest);

  /// Messages dropped by fault injection or missing endpoints.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Messages rejected by the queue bound (kDropNewest overflow).
  [[nodiscard]] std::uint64_t queue_rejections() const;

  /// Peak queue depth observed since construction.
  [[nodiscard]] std::size_t queue_high_watermark() const;

  /// Blocks until the queue is empty and the dispatcher is idle.
  void drain();

 private:
  struct Pending {
    Address from;
    Address to;
    util::SharedBuffer payload;
  };

  [[nodiscard]] static std::uint64_t pair_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void enqueue(Pending msg);
  void dispatch_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::condition_variable space_cv_;
  std::deque<Pending> queue_;
  std::unordered_map<Address, MessageHandler> handlers_;
  std::unordered_set<std::uint64_t> partitions_;
  std::unordered_set<NodeId> down_nodes_;
  std::uint64_t dropped_ = 0;
  std::uint64_t queue_rejections_ = 0;
  std::size_t max_depth_ = 0;  // 0 = unbounded
  QueueFullPolicy full_policy_ = QueueFullPolicy::kDropNewest;
  std::size_t queue_high_watermark_ = 0;
  bool stopping_ = false;
  bool busy_ = false;
  std::thread dispatcher_;
};

/// Transport endpoint on a LoopbackRouter.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(LoopbackRouter& router, Address local,
                    MessageHandler handler)
      : router_(router), local_(local) {
    router_.bind(local_, std::move(handler));
  }

  ~LoopbackTransport() override { router_.unbind(local_); }

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  // Plain send uses the base default (move-wrap into a SharedBuffer):
  // the router's native queue entry is reference-counted already.
  void send_shared(const Address& to, util::SharedBuffer payload) override {
    router_.post_shared(local_, to, std::move(payload));
  }

  [[nodiscard]] Address local_address() const override { return local_; }

 private:
  LoopbackRouter& router_;
  Address local_;
};

}  // namespace globe::net
