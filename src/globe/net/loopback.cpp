#include "globe/net/loopback.hpp"

#include "globe/util/assert.hpp"

namespace globe::net {

LoopbackRouter::LoopbackRouter()
    : dispatcher_([this] { dispatch_loop(); }) {}

LoopbackRouter::~LoopbackRouter() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

void LoopbackRouter::bind(const Address& at, MessageHandler handler) {
  std::lock_guard lock(mu_);
  // Same contract as sim::Network::bind: binding an endpoint that is
  // already bound is a bug (it would silently swallow the old handler's
  // traffic). Rebinding after an explicit unbind is supported.
  GLOBE_ASSERT_MSG(handlers_.find(at) == handlers_.end(),
                   "endpoint already bound");
  handlers_.emplace(at, std::move(handler));
}

void LoopbackRouter::unbind(const Address& at) {
  std::lock_guard lock(mu_);
  handlers_.erase(at);
}

void LoopbackRouter::enqueue(Pending msg) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

void LoopbackRouter::post(const Address& from, const Address& to,
                          Buffer payload) {
  enqueue(Pending{from, to,
                  std::make_shared<const Buffer>(std::move(payload))});
}

void LoopbackRouter::post_shared(const Address& from, const Address& to,
                                 util::SharedBuffer payload) {
  enqueue(Pending{from, to, std::move(payload)});
}

void LoopbackRouter::partition(NodeId a, NodeId b) {
  std::lock_guard lock(mu_);
  partitions_.insert(pair_key(a, b));
}

void LoopbackRouter::heal(NodeId a, NodeId b) {
  std::lock_guard lock(mu_);
  partitions_.erase(pair_key(a, b));
}

void LoopbackRouter::heal_all() {
  std::lock_guard lock(mu_);
  partitions_.clear();
}

void LoopbackRouter::set_node_down(NodeId n, bool down) {
  std::lock_guard lock(mu_);
  if (down) {
    down_nodes_.insert(n);
  } else {
    down_nodes_.erase(n);
  }
}

std::uint64_t LoopbackRouter::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void LoopbackRouter::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void LoopbackRouter::dispatch_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    Pending msg = std::move(queue_.front());
    queue_.pop_front();
    const bool faulted =
        partitions_.count(pair_key(msg.from.node, msg.to.node)) > 0 ||
        down_nodes_.count(msg.from.node) > 0 ||
        down_nodes_.count(msg.to.node) > 0;
    auto it = handlers_.find(msg.to);
    if (faulted || it == handlers_.end()) {  // cut, crashed, or gone: drop
      ++dropped_;
      if (queue_.empty()) idle_cv_.notify_all();
      continue;
    }
    MessageHandler handler = it->second;  // copy: handler may rebind
    busy_ = true;
    lock.unlock();
    handler(msg.from, util::BytesView(*msg.payload));
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace globe::net
