#include "globe/net/loopback.hpp"

#include <algorithm>

#include "globe/util/assert.hpp"

namespace globe::net {

LoopbackRouter::LoopbackRouter()
    : dispatcher_([this] { dispatch_loop(); }) {}

LoopbackRouter::~LoopbackRouter() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  dispatcher_.join();
}

void LoopbackRouter::bind(const Address& at, MessageHandler handler) {
  std::lock_guard lock(mu_);
  // Same contract as sim::Network::bind: binding an endpoint that is
  // already bound is a bug (it would silently swallow the old handler's
  // traffic). Rebinding after an explicit unbind is supported.
  GLOBE_ASSERT_MSG(handlers_.find(at) == handlers_.end(),
                   "endpoint already bound");
  handlers_.emplace(at, std::move(handler));
}

void LoopbackRouter::unbind(const Address& at) {
  std::lock_guard lock(mu_);
  handlers_.erase(at);
}

void LoopbackRouter::set_queue_limit(std::size_t max_depth,
                                     QueueFullPolicy policy) {
  {
    std::lock_guard lock(mu_);
    max_depth_ = max_depth;
    full_policy_ = policy;
  }
  space_cv_.notify_all();  // a raised limit may unblock posters
}

std::uint64_t LoopbackRouter::queue_rejections() const {
  std::lock_guard lock(mu_);
  return queue_rejections_;
}

std::size_t LoopbackRouter::queue_high_watermark() const {
  std::lock_guard lock(mu_);
  return queue_high_watermark_;
}

void LoopbackRouter::enqueue(Pending msg) {
  {
    std::unique_lock lock(mu_);
    if (max_depth_ != 0 && queue_.size() >= max_depth_) {
      // The dispatcher posting to itself (a handler sending) must never
      // block — it is the only drainer. It overflows to drop-newest.
      const bool self_post =
          std::this_thread::get_id() == dispatcher_.get_id();
      if (full_policy_ == QueueFullPolicy::kBlock && !self_post) {
        space_cv_.wait(lock, [this] {
          return stopping_ || max_depth_ == 0 || queue_.size() < max_depth_;
        });
      }
      if (stopping_) return;
      if (max_depth_ != 0 && queue_.size() >= max_depth_) {
        ++queue_rejections_;
        return;
      }
    }
    queue_.push_back(std::move(msg));
    queue_high_watermark_ = std::max(queue_high_watermark_, queue_.size());
  }
  cv_.notify_one();
}

void LoopbackRouter::post(const Address& from, const Address& to,
                          Buffer payload) {
  enqueue(Pending{from, to,
                  std::make_shared<const Buffer>(std::move(payload))});
}

void LoopbackRouter::post_shared(const Address& from, const Address& to,
                                 util::SharedBuffer payload) {
  enqueue(Pending{from, to, std::move(payload)});
}

void LoopbackRouter::partition(NodeId a, NodeId b) {
  std::lock_guard lock(mu_);
  partitions_.insert(pair_key(a, b));
}

void LoopbackRouter::heal(NodeId a, NodeId b) {
  std::lock_guard lock(mu_);
  partitions_.erase(pair_key(a, b));
}

void LoopbackRouter::heal_all() {
  std::lock_guard lock(mu_);
  partitions_.clear();
}

void LoopbackRouter::set_node_down(NodeId n, bool down) {
  std::lock_guard lock(mu_);
  if (down) {
    down_nodes_.insert(n);
  } else {
    down_nodes_.erase(n);
  }
}

std::uint64_t LoopbackRouter::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void LoopbackRouter::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void LoopbackRouter::dispatch_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    Pending msg = std::move(queue_.front());
    queue_.pop_front();
    space_cv_.notify_one();  // a blocked poster can take the freed slot
    const bool faulted =
        partitions_.count(pair_key(msg.from.node, msg.to.node)) > 0 ||
        down_nodes_.count(msg.from.node) > 0 ||
        down_nodes_.count(msg.to.node) > 0;
    auto it = handlers_.find(msg.to);
    if (faulted || it == handlers_.end()) {  // cut, crashed, or gone: drop
      ++dropped_;
      if (queue_.empty()) idle_cv_.notify_all();
      continue;
    }
    MessageHandler handler = it->second;  // copy: handler may rebind
    busy_ = true;
    lock.unlock();
    handler(msg.from, util::BytesView(*msg.payload));
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace globe::net
