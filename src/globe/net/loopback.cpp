#include "globe/net/loopback.hpp"

#include "globe/util/assert.hpp"

namespace globe::net {

LoopbackRouter::LoopbackRouter()
    : dispatcher_([this] { dispatch_loop(); }) {}

LoopbackRouter::~LoopbackRouter() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

void LoopbackRouter::bind(const Address& at, MessageHandler handler) {
  std::lock_guard lock(mu_);
  // Same contract as sim::Network::bind: binding an endpoint that is
  // already bound is a bug (it would silently swallow the old handler's
  // traffic). Rebinding after an explicit unbind is supported.
  GLOBE_ASSERT_MSG(handlers_.find(at) == handlers_.end(),
                   "endpoint already bound");
  handlers_.emplace(at, std::move(handler));
}

void LoopbackRouter::unbind(const Address& at) {
  std::lock_guard lock(mu_);
  handlers_.erase(at);
}

void LoopbackRouter::post(const Address& from, const Address& to,
                          Buffer payload) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(Pending{from, to, std::move(payload)});
  }
  cv_.notify_one();
}

void LoopbackRouter::drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void LoopbackRouter::dispatch_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    Pending msg = std::move(queue_.front());
    queue_.pop_front();
    auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) {  // endpoint gone: drop
      if (queue_.empty()) idle_cv_.notify_all();
      continue;
    }
    MessageHandler handler = it->second;  // copy: handler may rebind
    busy_ = true;
    lock.unlock();
    handler(msg.from, util::BytesView(msg.payload));
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace globe::net
