#include "globe/net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace globe::net {

namespace {

constexpr int kPollMillis = 100;  // stop-flag check cadence in recv loops

bool make_sockaddr(const std::string& host, std::uint16_t port,
                   sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

/// Blocking full write (the TCP lane); false on any error.
bool write_all(int fd, const std::byte* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketHost::SocketHost(SocketHostOptions options)
    : options_(std::move(options)) {
  sockaddr_in addr{};
  if (!make_sockaddr(options_.bind_host, options_.udp_port, addr)) return;

  udp_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (udp_fd_ < 0) return;
  if (::bind(udp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(udp_fd_);
    udp_fd_ = -1;
    return;
  }

  tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_listen_fd_ < 0) {
    ::close(udp_fd_);
    udp_fd_ = -1;
    return;
  }
  const int one = 1;
  ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  addr.sin_port = htons(options_.tcp_port);
  if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(tcp_listen_fd_, 16) != 0) {
    ::close(udp_fd_);
    ::close(tcp_listen_fd_);
    udp_fd_ = tcp_listen_fd_ = -1;
    return;
  }

  // Resolve kernel-assigned ports.
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(udp_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  udp_port_ = ntohs(bound.sin_port);
  blen = sizeof(bound);
  ::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  tcp_port_ = ntohs(bound.sin_port);

  ok_ = true;
  udp_thread_ = std::thread([this] { udp_recv_loop(); });
  accept_thread_ = std::thread([this] { tcp_accept_loop(); });
}

SocketHost::~SocketHost() {
  stopping_.store(true, std::memory_order_release);
  if (udp_thread_.joinable()) udp_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(conn_threads_mu_);
    for (ConnThread& t : conn_threads_) {
      if (t.thread.joinable()) t.thread.join();
    }
    conn_threads_.clear();
  }
  {
    std::lock_guard lock(tcp_mu_);
    for (auto& [node, conn] : tcp_conns_) {
      std::lock_guard conn_lock(conn->mu);
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    tcp_conns_.clear();
  }
  if (udp_fd_ >= 0) ::close(udp_fd_);
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
}

void SocketHost::add_route(NodeId node, SocketEndpoint ep) {
  std::lock_guard lock(mu_);
  routes_[node] = std::move(ep);
}

std::unique_ptr<Transport> SocketHost::create_transport(
    const Address& local, MessageHandler handler) {
  return std::make_unique<SocketTransport>(*this, local, std::move(handler));
}

SocketHostStats SocketHost::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void SocketHost::bind_endpoint(const Address& at, MessageHandler handler) {
  std::lock_guard lock(mu_);
  handlers_[at] = std::move(handler);
}

void SocketHost::unbind_endpoint(const Address& at) {
  std::lock_guard lock(mu_);
  handlers_.erase(at);
}

// ---------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------

void SocketHost::send_frame(const Address& from, const Address& to,
                            bool background, BytesView payload) {
  SocketEndpoint route;
  {
    std::lock_guard lock(mu_);
    if (!ok_) {
      ++stats_.send_errors;
      return;
    }
    auto it = routes_.find(to.node);
    if (it == routes_.end()) {
      ++stats_.unroutable;
      return;
    }
    route = it->second;
  }

  const Buffer header = SocketFrame::header_bytes(from, to, background);
  const std::size_t total = header.size() + payload.size();

  if (total <= options_.max_datagram) {
    sockaddr_in dest{};
    if (!make_sockaddr(route.host, route.udp_port, dest)) {
      std::lock_guard lock(mu_);
      ++stats_.send_errors;
      return;
    }
    // Scatter-gather: the shared payload goes to the kernel in place.
    iovec iov[2];
    iov[0].iov_base = const_cast<std::byte*>(header.data());
    iov[0].iov_len = header.size();
    iov[1].iov_base = const_cast<std::byte*>(payload.data());
    iov[1].iov_len = payload.size();
    msghdr msg{};
    msg.msg_name = &dest;
    msg.msg_namelen = sizeof(dest);
    msg.msg_iov = iov;
    msg.msg_iovlen = payload.empty() ? 1 : 2;
    const ssize_t n = ::sendmsg(udp_fd_, &msg, 0);
    std::lock_guard lock(mu_);
    if (n < 0) {
      ++stats_.send_errors;
    } else {
      ++stats_.udp_sent;
    }
    return;
  }

  // Bulk lane: [u32 len][header][payload] on a lazily-connected stream.
  // Only the per-peer lock is held across connect/write, so one
  // unresponsive peer cannot stall bulk sends to every other node.
  const std::shared_ptr<TcpConn> conn = tcp_conn_for(to.node);
  std::lock_guard conn_lock(conn->mu);
  int fd = conn->fd;
  if (fd < 0) fd = tcp_connect_locked(*conn, route);
  if (fd < 0) {
    std::lock_guard lock(mu_);
    ++stats_.send_errors;
    return;
  }
  util::Writer prefix;
  TcpFrameAssembler::encode_prefix(prefix, total);
  const Buffer& pre = prefix.view();
  const bool sent = write_all(fd, pre.data(), pre.size()) &&
                    write_all(fd, header.data(), header.size()) &&
                    write_all(fd, payload.data(), payload.size());
  if (!sent) {
    // Connection went bad: drop it; the next send reconnects.
    ::close(fd);
    conn->fd = -1;
  }
  std::lock_guard lock(mu_);
  if (sent) {
    ++stats_.tcp_sent;
  } else {
    ++stats_.send_errors;
  }
}

std::shared_ptr<SocketHost::TcpConn> SocketHost::tcp_conn_for(NodeId node) {
  std::lock_guard lock(tcp_mu_);
  auto& conn = tcp_conns_[node];
  if (!conn) conn = std::make_shared<TcpConn>();
  return conn;
}

int SocketHost::tcp_connect_locked(TcpConn& conn, const SocketEndpoint& ep) {
  sockaddr_in dest{};
  if (!make_sockaddr(ep.host, ep.tcp_port, dest)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&dest), sizeof(dest)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  conn.fd = fd;
  return fd;
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

void SocketHost::deliver(const Address& from, const Address& to,
                         BytesView payload) {
  MessageHandler handler;
  {
    std::lock_guard lock(mu_);
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.unknown_endpoint;
      return;
    }
    handler = it->second;  // copy: handler may unbind itself
  }
  handler(from, payload);
}

void SocketHost::udp_recv_loop() {
  std::vector<std::byte> buf(64 * 1024);
  pollfd pfd{udp_fd_, POLLIN, 0};
  while (!stopping_.load(std::memory_order_acquire)) {
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const ssize_t n = ::recvfrom(udp_fd_, buf.data(), buf.size(), 0,
                                 nullptr, nullptr);
    if (n <= 0) continue;
    try {
      const SocketFrame f =
          SocketFrame::decode(BytesView(buf.data(),
                                        static_cast<std::size_t>(n)));
      {
        std::lock_guard lock(mu_);
        ++stats_.udp_received;
      }
      deliver(f.from, f.to, f.payload);
    } catch (const CodecError&) {
      std::lock_guard lock(mu_);
      ++stats_.decode_errors;
    }
  }
}

void SocketHost::tcp_accept_loop() {
  pollfd pfd{tcp_listen_fd_, POLLIN, 0};
  while (!stopping_.load(std::memory_order_acquire)) {
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const int conn = ::accept(tcp_listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lock(conn_threads_mu_);
    // Reap threads whose connection loop has exited so churn does not
    // accumulate dead std::thread handles for the host's lifetime.
    for (auto it = conn_threads_.begin(); it != conn_threads_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = conn_threads_.erase(it);
      } else {
        ++it;
      }
    }
    conn_threads_.push_back(
        {done, std::thread([this, conn, done] {
           tcp_conn_loop(conn);
           done->store(true, std::memory_order_release);
         })});
  }
}

void SocketHost::tcp_conn_loop(int fd) {
  TcpFrameAssembler assembler;
  std::vector<std::byte> buf(64 * 1024);
  pollfd pfd{fd, POLLIN, 0};
  while (!stopping_.load(std::memory_order_acquire)) {
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    try {
      const auto frames = assembler.feed(
          BytesView(buf.data(), static_cast<std::size_t>(n)));
      for (const Buffer& frame : frames) {
        const SocketFrame f = SocketFrame::decode(BytesView(frame));
        {
          std::lock_guard lock(mu_);
          ++stats_.tcp_received;
        }
        deliver(f.from, f.to, f.payload);
      }
    } catch (const CodecError&) {
      // Poisoned stream: no resynchronisation possible, drop the
      // connection (the sender reconnects on its next bulk send).
      std::lock_guard lock(mu_);
      ++stats_.decode_errors;
      break;
    }
  }
  ::close(fd);
}

}  // namespace globe::net
