// Transport abstraction.
//
// A Transport delivers opaque byte payloads between endpoints. The
// communication object (core layer) is written against this interface so
// that the same protocol code runs over:
//   * SimTransport      — the deterministic simulated network,
//   * LoopbackTransport — a real threaded in-process router.
// This mirrors the paper's structure, where communication objects are
// system-provided and independent of the replication logic above them.
#pragma once

#include <functional>

#include "globe/net/address.hpp"
#include "globe/util/buffer.hpp"

namespace globe::net {

using util::Buffer;
using util::BytesView;

/// Delivery callback: invoked with the sender address and payload.
using MessageHandler =
    std::function<void(const Address& from, BytesView payload)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `payload` to `to`. Fire-and-forget; reliability depends on the
  /// underlying implementation (see Section 4.2 of the paper).
  virtual void send(const Address& to, Buffer payload) = 0;

  /// The local endpoint this transport is bound to.
  [[nodiscard]] virtual Address local_address() const = 0;
};

}  // namespace globe::net
