// Transport abstraction.
//
// A Transport delivers opaque byte payloads between endpoints. The
// communication object (core layer) is written against this interface so
// that the same protocol code runs over:
//   * SimTransport      — the deterministic simulated network,
//   * LoopbackTransport — a real threaded in-process router.
// This mirrors the paper's structure, where communication objects are
// system-provided and independent of the replication logic above them.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "globe/net/address.hpp"
#include "globe/util/buffer.hpp"

namespace globe::net {

using util::Buffer;
using util::BytesView;

/// Delivery callback: invoked with the sender address and payload.
using MessageHandler =
    std::function<void(const Address& from, BytesView payload)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `payload` to `to`. Fire-and-forget; reliability depends on the
  /// underlying implementation (see Section 4.2 of the paper).
  ///
  /// A transport must override at least one of send / send_shared; the
  /// defaults express each in terms of the other. The plain-send default
  /// wraps the buffer into a SharedBuffer by MOVE — no byte copy — so a
  /// transport whose native path is reference-counted only implements
  /// send_shared.
  virtual void send(const Address& to, Buffer payload) {
    send_shared(to, std::make_shared<const Buffer>(std::move(payload)));
  }

  /// Sends a shared, immutable datagram: the multicast fan-out path. One
  /// encoded wire buffer can be handed to many destinations without a
  /// per-destination copy — the transport only retains a reference until
  /// delivery. The copying fallback exists only for transports that
  /// insist on owning a mutable payload and override send alone.
  virtual void send_shared(const Address& to, util::SharedBuffer payload) {
    send(to, Buffer(*payload));
  }

  /// Fans one shared datagram out to every destination. The default is
  /// the obvious per-destination loop; windowed transports override it
  /// so the whole fan-out enters flow control as one operation (shared
  /// frame encodes across peers at the same stream position).
  virtual void multicast_shared(const std::vector<Address>& to,
                                util::SharedBuffer payload) {
    for (const Address& addr : to) send_shared(addr, payload);
  }

  /// Background sends: periodic liveness chatter (membership heartbeats,
  /// clock advertisements) whose delivery must not count as pending
  /// protocol work — with many beacon timers at arbitrary phases there
  /// is otherwise ALWAYS a datagram in flight and a run-to-quiescence
  /// simulation never quiesces. Transports without that notion (real
  /// networks, the threaded loopback) deliver them like any other send.
  virtual void send_background(const Address& to, Buffer payload) {
    send(to, std::move(payload));
  }
  virtual void send_shared_background(const Address& to,
                                      util::SharedBuffer payload) {
    send_shared(to, std::move(payload));
  }

  /// The local endpoint this transport is bound to.
  [[nodiscard]] virtual Address local_address() const = 0;
};

}  // namespace globe::net
