// Network addresses: (node, port) endpoints.
//
// A node models one address space (Figure 1 of the paper); within a node,
// ports demultiplex traffic to local objects and services (a store's
// replication object, the naming service, a client runtime).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "globe/util/ids.hpp"

namespace globe::net {

struct Address {
  NodeId node = kInvalidNode;
  PortId port = 0;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  [[nodiscard]] bool valid() const { return node != kInvalidNode; }
  [[nodiscard]] std::string str() const {
    return std::to_string(node) + ":" + std::to_string(port);
  }
};

inline constexpr Address kInvalidAddress{};

}  // namespace globe::net

template <>
struct std::hash<globe::net::Address> {
  std::size_t operator()(const globe::net::Address& a) const noexcept {
    return (static_cast<std::size_t>(a.node) << 16) ^ a.port;
  }
};
