// Transport bound to the simulated network.
#pragma once

#include <utility>

#include "globe/net/transport.hpp"
#include "globe/sim/network.hpp"

namespace globe::net {

/// Endpoint on the simulated network. Binding happens at construction and
/// is released on destruction (RAII).
class SimTransport final : public Transport {
 public:
  SimTransport(sim::Network& network, Address local, MessageHandler handler)
      : network_(network), local_(local) {
    network_.bind(local_, std::move(handler));
  }

  ~SimTransport() override { network_.unbind(local_); }

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  void send(const Address& to, Buffer payload) override {
    network_.send(local_, to, std::move(payload));
  }

  void send_shared(const Address& to, util::SharedBuffer payload) override {
    network_.send_shared(local_, to, std::move(payload));
  }

  void send_background(const Address& to, Buffer payload) override {
    network_.send(local_, to, std::move(payload), /*background=*/true);
  }

  void send_shared_background(const Address& to,
                              util::SharedBuffer payload) override {
    network_.send_shared(local_, to, std::move(payload), /*background=*/true);
  }

  [[nodiscard]] Address local_address() const override { return local_; }

 private:
  sim::Network& network_;
  Address local_;
};

}  // namespace globe::net
