// Windowed, credit-based multicast (à la Derecho's RDMC/SST windows).
//
// Sits between CommunicationObject::multicast_with and the transport:
// the shared-datagram fan-out lane (Transport::send_shared /
// multicast_shared) is carried over per-peer sliding windows with
// credit/ack flow control, cumulative acks plus selective retransmit,
// and datagram batching — small payloads queued behind a full window
// coalesce into MTU-budget frames, so a backed-up fan-out pipelines
// instead of posting one router/socket operation per datagram. Send
// queues are bounded per peer; a slow subscriber turns into pause /
// resume / evict events the replication layer polls (net/flow.hpp)
// instead of unbounded queue growth.
//
// Plain sends, request/reply traffic, and the background-beacon lane
// pass through unwindowed: reliability for those is already the
// coherence protocol's business (Section 4.2 of the paper), and beacons
// must never queue behind bulk data.
//
// One WindowedMulticast is shared by every endpoint of a runtime (like
// a LoopbackRouter); WindowedTransport decorates each endpoint's inner
// transport. All state is internally synchronized; callbacks into
// handlers and sends on inner transports run outside the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "globe/net/flow.hpp"
#include "globe/net/framing.hpp"
#include "globe/net/transport.hpp"

namespace globe::net {

struct WindowOptions {
  /// Max unacked data frames in flight per peer channel.
  std::size_t window_size = 32;
  /// Coalescing budget: a data frame packs queued payloads until their
  /// bytes exceed this (a single larger payload still travels alone).
  std::size_t mtu_budget = 16 * 1024;
  /// Bounded per-peer pending queue (payloads waiting for window
  /// slots). The pause event fires at half this depth, resume at a
  /// quarter; payloads beyond the full depth are dropped and counted.
  std::size_t max_queue = 256;
  /// Receiver acks every N in-order frames (plus immediately on gaps
  /// and on frames flagged ack_now).
  std::size_t ack_every = 8;
  /// Receiver-side reorder stash bound (frames); 0 = 2 * window_size.
  std::size_t stash_limit = 0;
  /// Self-eviction: a channel whose queue overflowed this many times
  /// with no ack progress in between is dropped. 0 = never (the
  /// replication layer applies its own pause deadline instead).
  std::uint64_t evict_after_stalls = 0;
};

struct WindowStats {
  std::uint64_t data_frames_sent = 0;
  std::uint64_t datagrams_sent = 0;       // payloads accepted for framing
  std::uint64_t datagrams_coalesced = 0;  // payloads that shared a frame
  std::uint64_t frame_encodes = 0;        // frames actually serialized
  std::uint64_t frames_shared = 0;        // frame sends reusing an encode
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t credit_stalls = 0;     // flush blocked by a full window
  std::uint64_t dropped_payloads = 0;  // bounded-queue overflow drops
  std::uint64_t reordered_frames = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t stash_drops = 0;  // reorder stash overflow
  std::uint64_t malformed_frames = 0;
  std::uint64_t pauses = 0;
  std::uint64_t resumes = 0;
  std::uint64_t evictions = 0;
  std::size_t queue_high_watermark = 0;   // peak pending payloads, any peer
  std::size_t window_high_watermark = 0;  // peak in-flight frames, any peer
};

class WindowedTransport;

class WindowedMulticast final : public FlowControl {
 public:
  explicit WindowedMulticast(WindowOptions options = {});
  ~WindowedMulticast() override;

  WindowedMulticast(const WindowedMulticast&) = delete;
  WindowedMulticast& operator=(const WindowedMulticast&) = delete;

  // ---- FlowControl ----
  [[nodiscard]] std::vector<Event> poll_events(const Address& local) override;
  [[nodiscard]] bool peer_paused(const Address& local,
                                 const Address& peer) const override;
  void reset_peer(const Address& local, const Address& peer) override;

  [[nodiscard]] WindowStats stats() const;
  [[nodiscard]] const WindowOptions& options() const { return options_; }

  /// Pending payloads queued for one peer (tests / bench occupancy gate).
  [[nodiscard]] std::size_t peer_queue_depth(const Address& local,
                                             const Address& peer) const;
  /// Unacked frames in flight to one peer.
  [[nodiscard]] std::size_t peer_window_depth(const Address& local,
                                              const Address& peer) const;

  /// Opportunistic loss recovery for runtimes without timers: resends
  /// the oldest unacked frame of every stalled channel of `local` (rate:
  /// one frame per channel per call) and flushes pending queues. Drivers
  /// over lossy transports (UDP) call this periodically.
  void tick(const Address& local);

 private:
  friend class WindowedTransport;

  /// A send to execute after the state lock is released.
  struct Action {
    Transport* via = nullptr;
    Address to;
    util::SharedBuffer wire;
  };

  struct TxChannel {
    Address peer;
    std::uint64_t next_seq = 0;
    std::uint64_t ack_base = 0;
    std::uint32_t credit = 0;  // receiver's window grant
    bool send_reset = true;    // first frame (re)starts the stream
    bool paused = false;
    bool evicted = false;
    std::uint64_t stalls = 0;  // overflow drops since last ack progress
    std::deque<util::SharedBuffer> pending;
    std::map<std::uint64_t, util::SharedBuffer> inflight;  // seq -> frame
  };

  struct RxChannel {
    std::uint64_t expected = 0;
    std::uint64_t since_ack = 0;
    std::map<std::uint64_t, Buffer> stash;  // out-of-order frames, owned
  };

  struct Endpoint {
    WindowedTransport* transport = nullptr;
    std::map<Address, TxChannel> tx;  // keyed by peer
    std::map<Address, RxChannel> rx;  // keyed by peer
    std::vector<Event> events;
  };

  // Registration (WindowedTransport lifecycle).
  void attach_endpoint(const Address& local, WindowedTransport* t);
  void detach_endpoint(const Address& local);

  // Sender side.
  void enqueue(const Address& local, const Address& peer,
               util::SharedBuffer payload);
  void enqueue_multicast(const Address& local,
                         const std::vector<Address>& peers,
                         util::SharedBuffer payload);
  /// Fills window slots from the pending queue. Channels passed in one
  /// call share frame encodes when their stream positions and queued
  /// payloads are identical (the steady multicast fan-out case).
  void flush_channels(Endpoint& ep, const std::vector<Address>& peers,
                      std::vector<Action>& actions);

  /// A stash frame drained into order: the owning buffer plus the
  /// (offset, length) of each coalesced payload inside it. Deliveries
  /// happen after the state lock is released, so views into the live
  /// receive buffer cannot be carried — drained frames own their bytes.
  struct DrainedFrame {
    Buffer frame;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
  };

  // Receiver side; returns true when the payload was a flow frame.
  bool on_receive(const Address& local, const Address& from,
                  BytesView payload, const MessageHandler& deliver);
  void handle_data(Endpoint& ep, const Address& from, BytesView wire,
                   std::vector<BytesView>& deliver_now,
                   std::vector<DrainedFrame>& drained,
                   std::vector<Action>& actions);
  void handle_ack(Endpoint& ep, const Address& from, const AckFrame& ack,
                  std::vector<Action>& actions);
  void send_ack(Endpoint& ep, const Address& from, RxChannel& rx,
                std::vector<Action>& actions);

  TxChannel& tx_channel(Endpoint& ep, const Address& peer);
  /// Feeds one channel's accounting to the credit-conservation monitor
  /// (checked builds only; no definition otherwise).
  void report_channel(const Endpoint& ep, const TxChannel& tx);
  void raise(Endpoint& ep, const Address& peer, PeerEvent what);
  static void run_actions(std::vector<Action>& actions);

  WindowOptions options_;
  mutable std::mutex mu_;
  std::map<Address, Endpoint> endpoints_;
  WindowStats stats_;
};

/// Transport decorator: the shared-datagram lane is windowed, plain and
/// background sends pass through. Created via windowed_factory.
class WindowedTransport final : public Transport {
 public:
  WindowedTransport(WindowedMulticast& host, Address local)
      : host_(host), local_(local) {
    host_.attach_endpoint(local_, this);
  }

  ~WindowedTransport() override {
    host_.detach_endpoint(local_);
    inner_.reset();  // unbind before the handler dies
  }

  WindowedTransport(const WindowedTransport&) = delete;
  WindowedTransport& operator=(const WindowedTransport&) = delete;

  /// Wires the inner transport and the upward delivery handler; called
  /// once by windowed_factory right after construction.
  void attach(std::unique_ptr<Transport> inner, MessageHandler handler) {
    inner_ = std::move(inner);
    handler_ = std::move(handler);
  }

  void send(const Address& to, Buffer payload) override {
    inner_->send(to, std::move(payload));
  }

  void send_shared(const Address& to, util::SharedBuffer payload) override {
    host_.enqueue(local_, to, std::move(payload));
  }

  void multicast_shared(const std::vector<Address>& to,
                        util::SharedBuffer payload) override {
    host_.enqueue_multicast(local_, to, std::move(payload));
  }

  // Beacon lane: heartbeats and clock advertisements never queue behind
  // bulk data and never consume window credit.
  void send_background(const Address& to, Buffer payload) override {
    inner_->send_background(to, std::move(payload));
  }
  void send_shared_background(const Address& to,
                              util::SharedBuffer payload) override {
    inner_->send_shared_background(to, std::move(payload));
  }

  [[nodiscard]] Address local_address() const override { return local_; }

  /// Receive tap installed by windowed_factory: flow frames are consumed
  /// by the host, everything else reaches the registered handler.
  void on_receive(const Address& from, BytesView payload) {
    if (!host_.on_receive(local_, from, payload, handler_)) {
      handler_(from, payload);
    }
  }

  [[nodiscard]] Transport& inner() { return *inner_; }

 private:
  WindowedMulticast& host_;
  Address local_;
  std::unique_ptr<Transport> inner_;
  MessageHandler handler_;
};

/// Same shape as core::TransportFactory (declared structurally to keep
/// net/ independent of core/).
using TransportFactoryFn =
    std::function<std::unique_ptr<Transport>(MessageHandler)>;

/// Wraps a factory so every endpoint it creates runs the shared-datagram
/// lane through `host`. The endpoint's address must be known to the
/// decorator before the inner transport exists, so the inner factory is
/// probed through the tap handler: the inner transport is created first
/// with a forwarding handler, then the decorator adopts it.
[[nodiscard]] inline TransportFactoryFn windowed_factory(
    WindowedMulticast& host, TransportFactoryFn inner_factory) {
  return [&host, inner_factory =
                     std::move(inner_factory)](MessageHandler handler)
             -> std::unique_ptr<Transport> {
    // Two-phase: the tap needs the WindowedTransport, the
    // WindowedTransport needs the endpoint address, and the address
    // comes from the inner transport. An atomic shared slot breaks the
    // cycle; it is filled before any message can arrive in practice
    // (traffic to a fresh endpoint starts only after it sends), and a
    // datagram racing the handoff is dropped like any pre-bind send.
    auto slot = std::make_shared<std::atomic<WindowedTransport*>>(nullptr);
    auto inner = inner_factory([slot](const Address& from,
                                      BytesView payload) {
      WindowedTransport* t = slot->load(std::memory_order_acquire);
      if (t != nullptr) t->on_receive(from, payload);
    });
    auto wt = std::make_unique<WindowedTransport>(host,
                                                  inner->local_address());
    slot->store(wt.get(), std::memory_order_release);
    wt->attach(std::move(inner), std::move(handler));
    return wt;
  };
}

}  // namespace globe::net
