#include "globe/net/windowed_multicast.hpp"

#include <algorithm>
#include <utility>

#include "globe/check/monitor.hpp"

namespace globe::net {

namespace {

/// Identity of a run of queued payloads: the shared payload pointers, so
/// channels fed by the same multicast compare equal without touching a
/// byte. Part of the frame-sharing key in flush_channels.
using PayloadRun = std::vector<const void*>;

#if defined(GLOBE_CHECKED) && GLOBE_CHECKED
[[nodiscard]] std::uint64_t addr_key(const Address& a) {
  return (static_cast<std::uint64_t>(a.node) << 16) | a.port;
}
#endif

}  // namespace

WindowedMulticast::WindowedMulticast(WindowOptions options)
    : options_(options) {
  if (options_.window_size == 0) options_.window_size = 1;
  if (options_.mtu_budget == 0) options_.mtu_budget = 1;
  if (options_.max_queue < 4) options_.max_queue = 4;
  if (options_.ack_every == 0) options_.ack_every = 1;
  if (options_.stash_limit == 0) options_.stash_limit = 2 * options_.window_size;
}

WindowedMulticast::~WindowedMulticast() { check::release(this); }

#if defined(GLOBE_CHECKED) && GLOBE_CHECKED
/// Snapshot one tx channel's accounting into the credit-conservation
/// monitor. Called under mu_ after every channel mutation.
void WindowedMulticast::report_channel(const Endpoint& ep,
                                       const TxChannel& tx) {
  if (tx.evicted) return;
  check::WindowChannelState st;
  st.next_seq = tx.next_seq;
  st.ack_base = tx.ack_base;
  st.inflight = tx.inflight.size();
  st.pending = tx.pending.size();
  st.credit = tx.credit;
  st.window_size = options_.window_size;
  st.max_queue = options_.max_queue;
  const Address local = ep.transport != nullptr
                            ? ep.transport->local_address()
                            : Address{};
  check::on_window_channel(this, &tx, addr_key(local), addr_key(tx.peer), st);
}
#endif

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

void WindowedMulticast::attach_endpoint(const Address& local,
                                        WindowedTransport* t) {
  std::lock_guard lock(mu_);
  endpoints_[local].transport = t;
}

void WindowedMulticast::detach_endpoint(const Address& local) {
  std::lock_guard lock(mu_);
  endpoints_.erase(local);
}

// ---------------------------------------------------------------------
// FlowControl surface
// ---------------------------------------------------------------------

std::vector<FlowControl::Event> WindowedMulticast::poll_events(
    const Address& local) {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(local);
  if (it == endpoints_.end()) return {};
  return std::exchange(it->second.events, {});
}

bool WindowedMulticast::peer_paused(const Address& local,
                                    const Address& peer) const {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(local);
  if (it == endpoints_.end()) return false;
  auto ch = it->second.tx.find(peer);
  return ch != it->second.tx.end() &&
         (ch->second.paused || ch->second.evicted);
}

void WindowedMulticast::reset_peer(const Address& local, const Address& peer) {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(local);
  if (it == endpoints_.end()) return;
  auto ch = it->second.tx.find(peer);
  if (ch == it->second.tx.end()) return;
  TxChannel& tx = ch->second;
  // Seqs stay monotonic across the reset; the next data frame carries
  // the reset flag so the receiver re-anchors its expected position.
  tx.pending.clear();
  tx.inflight.clear();
  tx.ack_base = tx.next_seq;
  tx.credit = static_cast<std::uint32_t>(options_.window_size);
  tx.paused = false;
  tx.evicted = false;
  tx.stalls = 0;
  tx.send_reset = true;
}

WindowStats WindowedMulticast::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t WindowedMulticast::peer_queue_depth(const Address& local,
                                                const Address& peer) const {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(local);
  if (it == endpoints_.end()) return 0;
  auto ch = it->second.tx.find(peer);
  return ch == it->second.tx.end() ? 0 : ch->second.pending.size();
}

std::size_t WindowedMulticast::peer_window_depth(const Address& local,
                                                 const Address& peer) const {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(local);
  if (it == endpoints_.end()) return 0;
  auto ch = it->second.tx.find(peer);
  return ch == it->second.tx.end() ? 0 : ch->second.inflight.size();
}

// ---------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------

WindowedMulticast::TxChannel& WindowedMulticast::tx_channel(
    Endpoint& ep, const Address& peer) {
  auto [it, fresh] = ep.tx.try_emplace(peer);
  if (fresh) {
    it->second.peer = peer;
    it->second.credit = static_cast<std::uint32_t>(options_.window_size);
  }
  return it->second;
}

void WindowedMulticast::raise(Endpoint& ep, const Address& peer,
                              PeerEvent what) {
  ep.events.push_back(Event{peer, what});
  switch (what) {
    case PeerEvent::kPaused: ++stats_.pauses; break;
    case PeerEvent::kResumed: ++stats_.resumes; break;
    case PeerEvent::kEvicted: ++stats_.evictions; break;
  }
}

void WindowedMulticast::enqueue(const Address& local, const Address& peer,
                                util::SharedBuffer payload) {
  enqueue_multicast(local, std::vector{peer}, std::move(payload));
}

void WindowedMulticast::enqueue_multicast(const Address& local,
                                          const std::vector<Address>& peers,
                                          util::SharedBuffer payload) {
  if (payload == nullptr || peers.empty()) return;
  std::vector<Action> actions;
  {
    std::lock_guard lock(mu_);
    auto it = endpoints_.find(local);
    if (it == endpoints_.end()) return;
    Endpoint& ep = it->second;
    for (const Address& peer : peers) {
      TxChannel& tx = tx_channel(ep, peer);
      if (tx.evicted) {
        ++stats_.dropped_payloads;
        continue;
      }
      if (tx.pending.size() >= options_.max_queue) {
        // Bounded queue: drop-newest, count, and escalate to eviction
        // when configured. The coherence layer recovers via resync.
        ++stats_.dropped_payloads;
        ++tx.stalls;
        if (options_.evict_after_stalls != 0 &&
            tx.stalls >= options_.evict_after_stalls) {
          tx.pending.clear();
          tx.inflight.clear();
          tx.ack_base = tx.next_seq;
          tx.evicted = true;
          raise(ep, peer, PeerEvent::kEvicted);
        }
        continue;
      }
      tx.pending.push_back(payload);
      ++stats_.datagrams_sent;
      stats_.queue_high_watermark =
          std::max(stats_.queue_high_watermark, tx.pending.size());
      if (!tx.paused && tx.pending.size() >= options_.max_queue / 2) {
        tx.paused = true;
        raise(ep, peer, PeerEvent::kPaused);
      }
    }
    flush_channels(ep, peers, actions);
  }
  run_actions(actions);
}

void WindowedMulticast::flush_channels(Endpoint& ep,
                                       const std::vector<Address>& peers,
                                       std::vector<Action>& actions) {
  // Frames whose (seq, payload run) match are encoded once and shared by
  // reference across channels — the steady multicast case, where every
  // subscriber sits at the same stream position and was fed the same
  // payloads. (ack_now falls out of queue depth, which matches whenever
  // the run matches, so it needs no key bit; reset frames never share.)
  std::map<std::pair<std::uint64_t, PayloadRun>, util::SharedBuffer> encoded;
  for (const Address& peer : peers) {
    auto ch = ep.tx.find(peer);
    if (ch == ep.tx.end()) continue;
    TxChannel& tx = ch->second;
    if (tx.evicted) continue;
    const std::size_t window = std::min<std::size_t>(
        options_.window_size, std::max<std::uint32_t>(tx.credit, 1));
    if (!tx.pending.empty() && tx.inflight.size() >= window) {
      ++stats_.credit_stalls;
    }
    while (!tx.pending.empty() && tx.inflight.size() < window) {
      // Coalesce queued payloads up to the MTU budget (always at least
      // one, so an oversized payload still travels — alone).
      std::vector<BytesView> bodies;
      PayloadRun run;
      std::vector<util::SharedBuffer> pinned;
      std::size_t bytes = 0;
      while (!tx.pending.empty() &&
             (bodies.empty() ||
              bytes + tx.pending.front()->size() <= options_.mtu_budget)) {
        util::SharedBuffer p = std::move(tx.pending.front());
        tx.pending.pop_front();
        bytes += p->size();
        bodies.emplace_back(*p);
        run.push_back(p.get());
        pinned.push_back(std::move(p));
      }
      const std::uint64_t seq = tx.next_seq++;
      const bool ack_now = tx.pending.empty() ||          // end of burst
                           tx.inflight.size() + 1 >= window;  // filling up
      util::SharedBuffer frame;
      const auto key = std::make_pair(seq, std::move(run));
      if (auto hit = encoded.find(key);
          !tx.send_reset && hit != encoded.end()) {
        frame = hit->second;
        ++stats_.frames_shared;
      } else {
        util::Writer w;
        DataFrame::encode(w, seq, ack_now, tx.send_reset, bodies);
        frame = std::make_shared<const Buffer>(w.take());
        ++stats_.frame_encodes;
        if (!tx.send_reset) encoded.emplace(key, frame);
      }
      tx.send_reset = false;
      tx.inflight.emplace(seq, frame);
      stats_.window_high_watermark =
          std::max(stats_.window_high_watermark, tx.inflight.size());
      ++stats_.data_frames_sent;
      if (bodies.size() > 1) stats_.datagrams_coalesced += bodies.size();
      actions.push_back(Action{&ep.transport->inner(), tx.peer, frame});
    }
#if defined(GLOBE_CHECKED) && GLOBE_CHECKED
    if (check::enabled()) report_channel(ep, tx);
#endif
  }
}

void WindowedMulticast::tick(const Address& local) {
  std::vector<Action> actions;
  {
    std::lock_guard lock(mu_);
    auto it = endpoints_.find(local);
    if (it == endpoints_.end()) return;
    Endpoint& ep = it->second;
    std::vector<Address> peers;
    peers.reserve(ep.tx.size());
    for (auto& [peer, tx] : ep.tx) {
      peers.push_back(peer);
      if (tx.evicted || tx.inflight.empty()) continue;
      // Resend the oldest unacked frame: recovers tail loss on lossy
      // transports where no later frame will ever trigger a nack.
      ++stats_.retransmits;
      actions.push_back(
          Action{&ep.transport->inner(), peer, tx.inflight.begin()->second});
    }
    flush_channels(ep, peers, actions);
  }
  run_actions(actions);
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------

bool WindowedMulticast::on_receive(const Address& local, const Address& from,
                                   BytesView payload,
                                   const MessageHandler& deliver) {
  if (!is_flow_frame(payload)) return false;
  const auto kind = static_cast<std::uint8_t>(payload[0]);
  std::vector<Action> actions;
  std::vector<BytesView> deliver_now;
  std::vector<DrainedFrame> drained;
  {
    std::lock_guard lock(mu_);
    auto it = endpoints_.find(local);
    if (it == endpoints_.end()) return true;
    Endpoint& ep = it->second;
    if (kind == kAckFrameKind) {
      try {
        const AckFrame ack = AckFrame::decode(payload);
        handle_ack(ep, from, ack, actions);
        flush_channels(ep, {from}, actions);
      } catch (const CodecError&) {
        ++stats_.malformed_frames;
      }
    } else if (kind == kDataFrameKind) {
      handle_data(ep, from, payload, deliver_now, drained, actions);
    } else {
      ++stats_.malformed_frames;  // reserved flow-frame range
    }
  }
  // Handlers and inner sends run outside the lock: a delivery may
  // legitimately re-enter this host (the store replies with updates).
  // `deliver_now` views alias the live receive buffer, which outlives
  // this call; drained stash frames own their bytes.
  for (const BytesView& b : deliver_now) deliver(from, b);
  for (const DrainedFrame& d : drained) {
    for (const auto& [off, len] : d.ranges) {
      deliver(from, BytesView(d.frame).subspan(off, len));
    }
  }
  run_actions(actions);
  return true;
}

void WindowedMulticast::handle_data(Endpoint& ep, const Address& from,
                                    BytesView wire,
                                    std::vector<BytesView>& deliver_now,
                                    std::vector<DrainedFrame>& drained,
                                    std::vector<Action>& actions) {
  DataFrame f;
  try {
    f = DataFrame::decode(wire);
  } catch (const CodecError&) {
    ++stats_.malformed_frames;
    return;
  }
  RxChannel& rx = ep.rx[from];
  if (f.reset && f.seq >= rx.expected) {
    // (Re)started stream: adopt the sender's position; anything stashed
    // from before the reset belongs to a stream that no longer exists.
    rx.expected = f.seq;
    std::erase_if(rx.stash, [&](const auto& kv) { return kv.first < f.seq; });
  }

  bool want_ack = false;
  if (f.seq < rx.expected) {
    ++stats_.duplicate_frames;
    want_ack = true;  // re-ack so a retransmitting sender advances
  } else if (f.seq > rx.expected) {
    ++stats_.reordered_frames;
    if (rx.stash.size() >= options_.stash_limit) {
      ++stats_.stash_drops;  // retransmission recovers it later
    } else if (!rx.stash.contains(f.seq)) {
      rx.stash.emplace(f.seq, Buffer(wire.begin(), wire.end()));
    }
    want_ack = true;  // immediate nack carrying the missing list
  } else {
    deliver_now = f.payloads;
    ++rx.expected;
    ++rx.since_ack;
    want_ack = f.ack_now;
    // Drain every stashed frame that is now in order.
    for (auto it = rx.stash.begin();
         it != rx.stash.end() && it->first == rx.expected;
         it = rx.stash.erase(it), ++rx.expected, ++rx.since_ack) {
      try {
        const DataFrame df = DataFrame::decode(BytesView(it->second));
        DrainedFrame d;
        d.ranges.reserve(df.payloads.size());
        const std::byte* base = it->second.data();
        for (const BytesView& b : df.payloads) {
          d.ranges.emplace_back(static_cast<std::size_t>(b.data() - base),
                                b.size());
        }
        d.frame = std::move(it->second);
        drained.push_back(std::move(d));
        want_ack = want_ack || df.ack_now;
      } catch (const CodecError&) {
        ++stats_.malformed_frames;  // validated at stash time; defensive
      }
    }
    if (rx.since_ack >= options_.ack_every || !rx.stash.empty()) {
      want_ack = true;
    }
  }
  if (want_ack) send_ack(ep, from, rx, actions);
}

void WindowedMulticast::send_ack(Endpoint& ep, const Address& from,
                                 RxChannel& rx,
                                 std::vector<Action>& actions) {
  AckFrame ack;
  ack.cumulative = rx.expected;
  const std::size_t stashed = std::min(options_.window_size, rx.stash.size());
  ack.credit = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, options_.window_size - stashed));
  // Selective-retransmit list: the holes below the highest stashed seq.
  if (!rx.stash.empty()) {
    const std::uint64_t horizon = rx.stash.rbegin()->first;
    for (std::uint64_t s = rx.expected;
         s < horizon && ack.missing.size() < 64; ++s) {
      if (!rx.stash.contains(s)) ack.missing.push_back(s);
    }
  }
  util::Writer w;
  ack.encode(w);
  rx.since_ack = 0;
  ++stats_.acks_sent;
  actions.push_back(Action{&ep.transport->inner(), from,
                           std::make_shared<const Buffer>(w.take())});
}

void WindowedMulticast::handle_ack(Endpoint& ep, const Address& from,
                                   const AckFrame& ack,
                                   std::vector<Action>& actions) {
  TxChannel& tx = tx_channel(ep, from);
  ++stats_.acks_received;
  if (tx.evicted) return;
  bool progress = false;
  while (!tx.inflight.empty() &&
         tx.inflight.begin()->first < ack.cumulative) {
    tx.inflight.erase(tx.inflight.begin());
    progress = true;
  }
  if (ack.cumulative > tx.ack_base) {
    tx.ack_base = ack.cumulative;
    progress = true;
  }
  tx.credit = std::max<std::uint32_t>(1, ack.credit);
  if (progress) tx.stalls = 0;
  // Selective retransmit straight from the inflight copies; sent by the
  // caller after the lock is released.
  for (std::uint64_t seq : ack.missing) {
    if (auto it = tx.inflight.find(seq); it != tx.inflight.end()) {
      ++stats_.retransmits;
      actions.push_back(Action{&ep.transport->inner(), from, it->second});
    }
  }
  if (tx.paused && tx.pending.size() <= options_.max_queue / 4) {
    tx.paused = false;
    raise(ep, from, PeerEvent::kResumed);
  }
#if defined(GLOBE_CHECKED) && GLOBE_CHECKED
  if (check::enabled()) report_channel(ep, tx);
#endif
}

void WindowedMulticast::run_actions(std::vector<Action>& actions) {
  for (Action& a : actions) a.via->send_shared(a.to, std::move(a.wire));
  actions.clear();
}

}  // namespace globe::net
