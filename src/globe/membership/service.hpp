// Membership service: dynamic replica sets as a first-class subsystem.
//
// The service owns one epoch-numbered View per object (view.hpp) and
// runs the join/leave/evict protocol over the standard envelope
// transport, so it works on any runtime:
//
//   * stores join when they come up and heartbeat periodically;
//   * a graceful leave removes the member immediately;
//   * a heartbeat-based failure detector evicts members that have gone
//     silent (crash or partition) after `failure_timeout`;
//   * a heartbeat from an evicted member re-admits it — this is what
//     heals membership automatically after a partition, with no
//     operator action;
//   * every change bumps the epoch and broadcasts a kViewChange to the
//     surviving members and to watching clients.
//
// The service keeps the naming/location service consistent: joins
// register the store's contact point, leaves and evictions unregister it
// — evicted stores disappear from resolution instead of lingering as
// stale contacts.
//
// Sharded deployments use the same machinery with one twist: all stores
// of a cluster join ONE scope (the envelope object id), each announcing
// the shard it serves. The scope keeps a single member list and a single
// heartbeat stream, but projects per-shard subgroup views out of it
// (Derecho-style): each shard has its own epoch and its own broadcast
// fan-out, so churn in a hot shard bumps and broadcasts only that
// shard's view — cold shards never hear about it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "globe/core/comm.hpp"
#include "globe/membership/view.hpp"
#include "globe/metrics/stats.hpp"
#include "globe/naming/service.hpp"
#include "globe/sim/simulator.hpp"

namespace globe::membership {

using core::CommunicationObject;
using core::TransportFactory;
using net::Address;

struct MembershipOptions {
  /// Failure-detector sweep period (also the expected member heartbeat
  /// cadence).
  sim::SimDuration heartbeat_period = sim::SimDuration::millis(100);
  /// A member silent for longer than this is evicted.
  sim::SimDuration failure_timeout = sim::SimDuration::millis(350);
  /// The permanent primary is normally exempt from eviction (it is the
  /// paper's persistence root; evicting it would leave the object
  /// headless for single-master models).
  bool evict_primary = false;
  /// When set, joins/leaves/evictions keep the location tables in sync.
  naming::NamingServer* naming = nullptr;
  /// Broadcast view changes as ViewDelta diffs (epoch + joined/left)
  /// instead of full member lists; receivers with an epoch gap fetch
  /// the full view. False restores the full-view broadcast baseline.
  bool view_deltas = true;
  /// When set, per-shard view changes feed the shard rollups.
  metrics::MetricsSink* metrics = nullptr;
};

/// Aggregate protocol counters (tests / benchmarks).
struct MembershipStats {
  std::uint64_t joins = 0;
  std::uint64_t rejoins = 0;  // heartbeat re-admissions after eviction
  std::uint64_t leaves = 0;
  std::uint64_t evictions = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t delta_broadcasts = 0;  // view changes sent as diffs
  std::uint64_t view_fetches = 0;      // full-view fetches (epoch gaps)
  std::uint64_t horizon_advances = 0;  // stability-horizon floor moves
};

class MembershipService {
 public:
  /// `sim` may be null (loopback runtime); the failure detector then
  /// stays off and only explicit join/leave traffic changes views.
  MembershipService(const TransportFactory& factory, sim::Simulator* sim,
                    MembershipOptions options = {});
  ~MembershipService();

  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;

  [[nodiscard]] Address address() const { return comm_.local_address(); }

  /// Current view of an object (epoch 0 / empty when nobody joined).
  /// Legacy single-object deployments live entirely in shard 0.
  [[nodiscard]] View current_view(ObjectId object) const {
    return snapshot_view(object, 0);
  }
  [[nodiscard]] std::uint64_t epoch(ObjectId object) const {
    return shard_epoch(object, 0);
  }
  /// Per-shard subgroup projections of one scope's member list.
  [[nodiscard]] View shard_view(ObjectId scope, ShardId shard) const {
    return snapshot_view(scope, shard);
  }
  [[nodiscard]] std::uint64_t shard_epoch(ObjectId scope, ShardId shard) const;
  [[nodiscard]] const MembershipStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t watcher_count(ObjectId object,
                                          ShardId shard = 0) const;

  /// The scope's current stability horizon: the element-wise minimum
  /// applied clock (and minimum applied global seq) over every live,
  /// data-carrying member, folded from heartbeat piggybacks. Members
  /// silent past `failure_timeout` are excluded even before eviction —
  /// including the eviction-exempt primary — so one crashed store cannot
  /// freeze GC cluster-wide. Monotonic: only ever advances.
  [[nodiscard]] HorizonMsg stability_horizon(ObjectId scope) const;

  /// Runs one failure-detector sweep immediately (tests).
  void sweep_now() { sweep(); }

 private:
  struct MemberState {
    naming::ContactPoint contact;
    ShardId shard = 0;
    util::SimTime last_heard{};
    // Latest stability-horizon piggyback from this member (view.hpp
    // MemberAnnounce): false until the store reports hosting data.
    bool has_applied = false;
    coherence::VectorClock applied;
    std::uint64_t applied_gseq = 0;
  };
  /// Per-shard epoch + broadcast bookkeeping. The member list itself is
  /// scope-wide (one heartbeat stream, one failure detector); these are
  /// the independently-advancing subgroup projections of it.
  struct ShardGroup {
    std::uint64_t epoch = 0;
    // Members as of the last broadcast, for computing ViewDelta diffs.
    // Empty epoch-0 state means nothing was broadcast yet (the first
    // change always goes out as a full view).
    std::vector<naming::ContactPoint> broadcast_members;
    std::uint64_t broadcast_epoch = 0;
  };
  struct ScopeState {
    std::vector<MemberState> members;
    std::map<ShardId, ShardGroup> shards;
    // Scope-wide stability horizon (monotonic GC floor).
    coherence::VectorClock horizon;
    std::uint64_t horizon_gseq = 0;
  };

  void on_message(const Address& from, const msg::EnvelopeView& env);
  void admit(ObjectId scope, const MemberAnnounce& announce, bool* added);
  void remove(ObjectId scope, const Address& addr, bool evicted);
  void sweep();
  /// Re-aggregates `scope`'s stability horizon from its live members and
  /// broadcasts kStabilityHorizon to them when the floor advanced.
  void update_horizon(ObjectId scope, ScopeState& state);
  /// `exclude` suppresses the broadcast to one member — a fresh joiner
  /// whose join ack already carries the full view (a delta would only
  /// trigger a redundant full-view fetch at its 0-epoch base).
  void broadcast(ObjectId scope, ShardId shard,
                 const Address* exclude = nullptr);
  [[nodiscard]] View snapshot_view(ObjectId scope, ShardId shard) const;
  [[nodiscard]] util::SimTime now() const {
    return sim_ != nullptr ? sim_->now() : util::SimTime{};
  }

  sim::Simulator* sim_;
  MembershipOptions options_;
  CommunicationObject comm_;
  std::map<ObjectId, ScopeState> scopes_;
  std::map<std::pair<ObjectId, ShardId>, std::vector<Address>> watchers_;
  std::optional<sim::PeriodicTimer> sweep_timer_;
  MembershipStats stats_;
};

}  // namespace globe::membership
