// Replica views: epoch-numbered per-object membership.
//
// The paper binds clients to a fixed per-object replica set; this module
// makes that set dynamic. A View is the membership service's statement of
// which stores currently carry one distributed object, stamped with a
// monotonically increasing epoch. Every change — join, graceful leave,
// failure eviction, re-admission after a partition heals — produces a new
// epoch, broadcast to the members and to watching clients. The
// replication layer subscribes to these views: stores drop evicted
// subscribers and re-resolve their propagation parent, clients re-bind
// their read/write stores (see docs/scenarios.md).
#pragma once

#include <cstdint>
#include <vector>

#include "globe/coherence/vector_clock.hpp"
#include "globe/naming/contact.hpp"
#include "globe/net/address.hpp"
#include "globe/util/buffer.hpp"
#include "globe/util/ids.hpp"

namespace globe::membership {

/// One replica subgroup's membership at one epoch. Members are the
/// alive stores only: evicted and departed stores are simply absent.
///
/// `object` names the membership scope: a single object in the original
/// per-object mode, or a whole cluster of stores in sharded mode. In
/// sharded mode the scope's one member list is projected into per-shard
/// subgroup views (Derecho-style), and `shard` says which projection
/// this view is; each shard's epoch advances independently.
struct View {
  ObjectId object = 0;  // membership scope (object id or cluster id)
  ShardId shard = 0;    // subgroup within the scope (0 in legacy mode)
  std::uint64_t epoch = 0;
  std::vector<naming::ContactPoint> members;

  [[nodiscard]] bool contains(const net::Address& addr) const {
    for (const auto& m : members) {
      if (m.address == addr) return true;
    }
    return false;
  }

  [[nodiscard]] const naming::ContactPoint* find(
      const net::Address& addr) const {
    for (const auto& m : members) {
      if (m.address == addr) return &m;
    }
    return nullptr;
  }

  [[nodiscard]] const naming::ContactPoint* primary() const {
    for (const auto& m : members) {
      if (m.is_primary) return &m;
    }
    return nullptr;
  }

  void encode(util::Writer& w) const {
    w.u64(object);
    w.u32(shard);
    w.varint(epoch);
    w.varint(members.size());
    for (const auto& m : members) m.encode(w);
  }

  static View decode(util::Reader& r) {
    View v;
    v.object = r.u64();
    v.shard = r.u32();
    v.epoch = r.varint();
    const std::uint64_t n = r.varint();
    v.members.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      v.members.push_back(naming::ContactPoint::decode(r));
    }
    return v;
  }

  friend bool operator==(const View&, const View&) = default;
};

/// Picks the propagation parent for `self` out of a view: the primary if
/// one is alive, otherwise the most-permanent other member (lowest store
/// class, then lowest store id) — the store most likely to hold the
/// longest history.
[[nodiscard]] inline const naming::ContactPoint* choose_upstream(
    const View& view, const net::Address& self) {
  const naming::ContactPoint* best = nullptr;
  for (const auto& m : view.members) {
    if (m.address == self) continue;
    if (m.is_primary) return &m;
    if (best == nullptr ||
        static_cast<std::uint8_t>(m.store_class) <
            static_cast<std::uint8_t>(best->store_class) ||
        (m.store_class == best->store_class && m.store_id < best->store_id)) {
      best = &m;
    }
  }
  return best;
}

/// kViewDelta body: one epoch step expressed as a diff — the members that
/// joined and the addresses that left since the previous epoch — instead
/// of the full membership list. At high replica counts this removes the
/// O(members) amplification of broadcasting every view change to every
/// member and watcher. A receiver applies the delta onto its cached view
/// when the epoch is contiguous; on a gap (it missed deltas) it fetches
/// the full view with kViewFetchRequest.
struct ViewDelta {
  ObjectId object = 0;  // membership scope
  ShardId shard = 0;    // subgroup the diff applies to
  std::uint64_t epoch = 0;  // the epoch AFTER this change
  std::vector<naming::ContactPoint> joined;
  std::vector<net::Address> left;

  /// The shared receiver rule: this diff is applicable iff the receiver
  /// has a base (epoch != 0), the base is current (`base.epoch ==
  /// current_epoch`), and this diff is the next epoch. On success `out`
  /// is the new view; on failure the receiver must re-anchor with a
  /// full-view fetch (kViewFetchRequest). Both stores and watching
  /// clients route through this, so the contiguity policy lives once.
  [[nodiscard]] bool try_apply(const View& base, std::uint64_t current_epoch,
                               View* out) const {
    if (current_epoch == 0 || epoch != current_epoch + 1 ||
        base.epoch != current_epoch) {
      return false;
    }
    *out = base;
    apply_to(*out);
    return true;
  }

  /// Applies this diff onto `base` (the receiver's cached previous
  /// view), producing the members of `epoch`.
  void apply_to(View& base) const {
    for (const net::Address& a : left) {
      std::erase_if(base.members, [&](const naming::ContactPoint& m) {
        return m.address == a;
      });
    }
    for (const naming::ContactPoint& c : joined) {
      if (!base.contains(c.address)) base.members.push_back(c);
    }
    base.object = object;
    base.shard = shard;
    base.epoch = epoch;
  }

  void encode(util::Writer& w) const {
    w.u64(object);
    w.u32(shard);
    w.varint(epoch);
    w.varint(joined.size());
    for (const auto& c : joined) c.encode(w);
    w.varint(left.size());
    for (const auto& a : left) {
      w.u32(a.node);
      w.u16(a.port);
    }
  }

  static ViewDelta decode(util::BytesView wire) {
    util::Reader r(wire);
    ViewDelta d;
    d.object = r.u64();
    d.shard = r.u32();
    d.epoch = r.varint();
    const std::uint64_t nj = r.varint();
    d.joined.reserve(nj);
    for (std::uint64_t i = 0; i < nj; ++i) {
      d.joined.push_back(naming::ContactPoint::decode(r));
    }
    const std::uint64_t nl = r.varint();
    d.left.reserve(nl);
    for (std::uint64_t i = 0; i < nl; ++i) {
      net::Address a;
      a.node = r.u32();
      a.port = r.u16();
      d.left.push_back(a);
    }
    r.expect_end();
    return d;
  }
};

// ---------------------------------------------------------------------
// Wire bodies of the membership protocol (envelope types 24..29).
// ---------------------------------------------------------------------

/// kMembershipJoin / kMembershipHeartbeat body: the sender's contact
/// point. A heartbeat from a store that is not in the view (evicted
/// during a partition, now heard from again) is treated as a join, which
/// is what re-admits replicas automatically after a heal.
struct MemberAnnounce {
  naming::ContactPoint contact;
  ShardId shard = 0;  // subgroup the announcing store serves

  // Stability-horizon piggyback: the announcing store's minimum applied
  // state across the objects it hosts (element-wise min clock, min
  // global seq). The membership service folds these into the
  // cluster-wide GC floor it broadcasts as kStabilityHorizon.
  // `has_applied` is false for stores hosting no replicated object yet —
  // they carry no data and must not stall the floor. Legacy senders omit
  // the trailing fields entirely; the decoder tolerates their absence.
  bool has_applied = false;
  coherence::VectorClock applied;
  std::uint64_t applied_gseq = 0;

  void encode(util::Writer& w) const {
    contact.encode(w);
    w.u32(shard);
    w.boolean(has_applied);
    applied.encode(w);
    w.varint(applied_gseq);
  }

  static MemberAnnounce decode(util::BytesView wire) {
    util::Reader r(wire);
    MemberAnnounce m;
    m.contact = naming::ContactPoint::decode(r);
    m.shard = r.u32();
    if (!r.at_end()) {
      m.has_applied = r.boolean();
      m.applied = coherence::VectorClock::decode(r);
      m.applied_gseq = r.varint();
    }
    r.expect_end();
    return m;
  }
};

/// kStabilityHorizon body: the scope-wide GC floor — the element-wise
/// minimum applied clock and minimum applied global seq over every live
/// member that hosts data. Everything at or below this floor has been
/// applied cluster-wide, so write-log entries can compact past it,
/// tombstones for covered deletes can be collected, and the streaming
/// checker can retire buffered events. The floor only ever advances;
/// receivers must treat a regressing announcement as stale.
struct HorizonMsg {
  coherence::VectorClock clock;
  std::uint64_t gseq = 0;

  void encode(util::Writer& w) const {
    clock.encode(w);
    w.varint(gseq);
  }

  static HorizonMsg decode(util::BytesView wire) {
    util::Reader r(wire);
    HorizonMsg m;
    m.clock = coherence::VectorClock::decode(r);
    m.gseq = r.varint();
    r.expect_end();
    return m;
  }
};

/// kMembershipLeave body: graceful departure of an endpoint.
struct LeaveMsg {
  net::Address address;

  void encode(util::Writer& w) const {
    w.u32(address.node);
    w.u16(address.port);
  }

  static LeaveMsg decode(util::BytesView wire) {
    util::Reader r(wire);
    LeaveMsg m;
    m.address.node = r.u32();
    m.address.port = r.u16();
    r.expect_end();
    return m;
  }
};

/// kMembershipWatch body: a client endpoint subscribing to (or, with
/// subscribe=false, unsubscribing from) view-change pushes.
struct WatchMsg {
  net::Address watcher;
  ShardId shard = 0;  // subgroup whose view changes the watcher wants
  bool subscribe = true;

  void encode(util::Writer& w) const {
    w.u32(watcher.node);
    w.u16(watcher.port);
    w.u32(shard);
    w.boolean(subscribe);
  }

  static WatchMsg decode(util::BytesView wire) {
    util::Reader r(wire);
    WatchMsg m;
    m.watcher.node = r.u32();
    m.watcher.port = r.u16();
    m.shard = r.u32();
    m.subscribe = r.boolean();
    r.expect_end();
    return m;
  }
};

/// kViewFetchRequest body: which subgroup's full view to fetch. Legacy
/// senders omitted the body entirely; an empty body means shard 0.
struct ViewFetchMsg {
  ShardId shard = 0;

  void encode(util::Writer& w) const { w.u32(shard); }

  static ViewFetchMsg decode(util::BytesView wire) {
    ViewFetchMsg m;
    if (wire.empty()) return m;
    util::Reader r(wire);
    m.shard = r.u32();
    r.expect_end();
    return m;
  }
};

/// kViewChange / kMembershipJoinAck body: the view itself.
struct ViewMsg {
  View view;

  void encode(util::Writer& w) const { view.encode(w); }

  static ViewMsg decode(util::BytesView wire) {
    util::Reader r(wire);
    ViewMsg m;
    m.view = View::decode(r);
    r.expect_end();
    return m;
  }
};

}  // namespace globe::membership
