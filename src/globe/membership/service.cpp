#include "globe/membership/service.hpp"

#include <algorithm>

#include "globe/util/log.hpp"

namespace globe::membership {

MembershipService::MembershipService(const TransportFactory& factory,
                                     sim::Simulator* sim,
                                     MembershipOptions options)
    : sim_(sim), options_(options), comm_(factory, sim) {
  comm_.set_delivery_handler(
      [this](const Address& from, const msg::EnvelopeView& env) {
        on_message(from, env);
      });
  if (sim_ != nullptr) {
    sweep_timer_.emplace(*sim_, options_.heartbeat_period, [this] { sweep(); });
    sweep_timer_->start();
  }
}

std::uint64_t MembershipService::epoch(ObjectId object) const {
  auto it = objects_.find(object);
  return it == objects_.end() ? 0 : it->second.epoch;
}

std::size_t MembershipService::watcher_count(ObjectId object) const {
  auto it = watchers_.find(object);
  return it == watchers_.end() ? 0 : it->second.size();
}

View MembershipService::snapshot_view(ObjectId object) const {
  View v;
  v.object = object;
  auto it = objects_.find(object);
  if (it == objects_.end()) return v;
  v.epoch = it->second.epoch;
  v.members.reserve(it->second.members.size());
  for (const MemberState& m : it->second.members) v.members.push_back(m.contact);
  return v;
}

void MembershipService::admit(ObjectId object,
                              const naming::ContactPoint& contact,
                              bool* added) {
  ObjectState& state = objects_[object];
  auto it = std::find_if(state.members.begin(), state.members.end(),
                         [&](const MemberState& m) {
                           return m.contact.address == contact.address;
                         });
  if (it != state.members.end()) {
    it->contact = contact;
    it->last_heard = now();
    *added = false;
    return;
  }
  state.members.push_back(MemberState{contact, now()});
  ++state.epoch;
  if (options_.naming != nullptr) {
    options_.naming->register_contact(object, contact);
  }
  *added = true;
}

void MembershipService::remove(ObjectId object, const Address& addr,
                               bool evicted) {
  auto it = objects_.find(object);
  if (it == objects_.end()) return;
  auto& members = it->second.members;
  const auto before = members.size();
  std::erase_if(members, [&](const MemberState& m) {
    return m.contact.address == addr;
  });
  if (members.size() == before) return;
  ++it->second.epoch;
  if (options_.naming != nullptr) {
    options_.naming->unregister_contact(object, addr);
  }
  if (evicted) {
    ++stats_.evictions;
  } else {
    ++stats_.leaves;
  }
  broadcast(object);
}

void MembershipService::sweep() {
  for (auto& [object, state] : objects_) {
    std::vector<Address> dead;
    for (const MemberState& m : state.members) {
      if (m.contact.is_primary && !options_.evict_primary) continue;
      if (now() - m.last_heard > options_.failure_timeout) {
        dead.push_back(m.contact.address);
      }
    }
    if (dead.empty()) continue;
    // One epoch bump for the whole batch: members that stayed see a
    // contiguous epoch sequence (+1), which is what lets them tell
    // "routine change" from "I missed view changes myself".
    auto& members = state.members;
    for (const Address& addr : dead) {
      std::erase_if(members, [&](const MemberState& m) {
        return m.contact.address == addr;
      });
      if (options_.naming != nullptr) {
        options_.naming->unregister_contact(object, addr);
      }
      ++stats_.evictions;
    }
    ++state.epoch;
    broadcast(object);
  }
}

void MembershipService::broadcast(ObjectId object, const Address* exclude) {
  ++stats_.view_changes;
  const View v = snapshot_view(object);
  std::vector<Address> targets;
  for (const auto& m : v.members) {
    if (exclude != nullptr && m.address == *exclude) continue;
    targets.push_back(m.address);
  }
  auto wit = watchers_.find(object);
  if (wit != watchers_.end()) {
    targets.insert(targets.end(), wit->second.begin(), wit->second.end());
  }

  ObjectState& state = objects_[object];
  // Diff broadcast: epoch + joined/left instead of the full member list.
  // Only sound when the receivers can have seen the previous epoch —
  // i.e. something was broadcast before and exactly one epoch elapsed
  // since (admit() bumps the epoch without broadcasting only for the
  // join path, which broadcasts immediately after).
  const bool can_delta = options_.view_deltas && state.broadcast_epoch != 0 &&
                         v.epoch == state.broadcast_epoch + 1;
  if (can_delta) {
    ViewDelta d;
    d.object = object;
    d.epoch = v.epoch;
    for (const auto& m : v.members) {
      bool had = false;
      for (const auto& prev : state.broadcast_members) {
        if (prev.address == m.address) {
          had = true;
          break;
        }
      }
      if (!had) d.joined.push_back(m);
    }
    for (const auto& prev : state.broadcast_members) {
      if (!v.contains(prev.address)) d.left.push_back(prev.address);
    }
    ++stats_.delta_broadcasts;
    comm_.multicast_with(targets, msg::MsgType::kViewDelta, object,
                         [&](util::Writer& w) { d.encode(w); });
  } else {
    comm_.multicast_with(targets, msg::MsgType::kViewChange, object,
                         [&](util::Writer& w) { v.encode(w); });
  }
  state.broadcast_members = v.members;
  state.broadcast_epoch = v.epoch;
}

void MembershipService::on_message(const Address& from,
                                   const msg::EnvelopeView& env) {
  switch (env.type) {
    case msg::MsgType::kMembershipJoin: {
      const MemberAnnounce m = MemberAnnounce::decode(env.body);
      bool added = false;
      admit(env.object, m.contact, &added);
      if (added) {
        ++stats_.joins;
        broadcast(env.object, &m.contact.address);
      }
      const View v = snapshot_view(env.object);
      comm_.reply_with(from, msg::MsgType::kMembershipJoinAck, env.object,
                       env.request_id, [&](util::Writer& w) { v.encode(w); });
      return;
    }
    case msg::MsgType::kMembershipHeartbeat: {
      const MemberAnnounce m = MemberAnnounce::decode(env.body);
      bool added = false;
      admit(env.object, m.contact, &added);
      if (added) {
        // Heard from a store the view does not contain: it was evicted
        // during a partition (or crashed and recovered) and is back.
        ++stats_.rejoins;
        broadcast(env.object);
      }
      return;
    }
    case msg::MsgType::kMembershipLeave: {
      const LeaveMsg m = LeaveMsg::decode(env.body);
      remove(env.object, m.address, /*evicted=*/false);
      return;
    }
    case msg::MsgType::kViewFetchRequest: {
      // A receiver with an epoch gap (it missed delta broadcasts, e.g.
      // across a partition) re-anchors on the full view.
      ++stats_.view_fetches;
      const View v = snapshot_view(env.object);
      comm_.reply_with(from, msg::MsgType::kViewFetchReply, env.object,
                       env.request_id, [&](util::Writer& w) { v.encode(w); });
      return;
    }
    case msg::MsgType::kMembershipWatch: {
      const WatchMsg m = WatchMsg::decode(env.body);
      auto& list = watchers_[env.object];
      if (!m.subscribe) {
        std::erase(list, m.watcher);
        return;
      }
      if (std::find(list.begin(), list.end(), m.watcher) == list.end()) {
        list.push_back(m.watcher);
      }
      return;
    }
    default:
      GLOBE_LOG_ERROR("membership", "unexpected message type %s",
                      msg::to_string(env.type));
  }
}

}  // namespace globe::membership
