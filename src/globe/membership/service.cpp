#include "globe/membership/service.hpp"

#include <algorithm>

#include "globe/check/monitor.hpp"
#include "globe/util/log.hpp"

namespace globe::membership {

MembershipService::MembershipService(const TransportFactory& factory,
                                     sim::Simulator* sim,
                                     MembershipOptions options)
    : sim_(sim), options_(options), comm_(factory, sim) {
  comm_.set_delivery_handler(
      [this](const Address& from, const msg::EnvelopeView& env) {
        on_message(from, env);
      });
  if (sim_ != nullptr) {
    sweep_timer_.emplace(*sim_, options_.heartbeat_period, [this] { sweep(); });
    sweep_timer_->start();
  }
}

MembershipService::~MembershipService() {
  check::release(this);
}

std::uint64_t MembershipService::shard_epoch(ObjectId scope,
                                             ShardId shard) const {
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) return 0;
  auto sit = it->second.shards.find(shard);
  return sit == it->second.shards.end() ? 0 : sit->second.epoch;
}

std::size_t MembershipService::watcher_count(ObjectId object,
                                             ShardId shard) const {
  auto it = watchers_.find({object, shard});
  return it == watchers_.end() ? 0 : it->second.size();
}

View MembershipService::snapshot_view(ObjectId scope, ShardId shard) const {
  View v;
  v.object = scope;
  v.shard = shard;
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) return v;
  auto sit = it->second.shards.find(shard);
  if (sit == it->second.shards.end()) return v;
  v.epoch = sit->second.epoch;
  for (const MemberState& m : it->second.members) {
    if (m.shard == shard) v.members.push_back(m.contact);
  }
  return v;
}

void MembershipService::admit(ObjectId scope, const MemberAnnounce& announce,
                              bool* added) {
  ScopeState& state = scopes_[scope];
  const naming::ContactPoint& contact = announce.contact;
  auto it = std::find_if(state.members.begin(), state.members.end(),
                         [&](const MemberState& m) {
                           return m.contact.address == contact.address;
                         });
  if (it != state.members.end()) {
    it->contact = contact;
    it->last_heard = now();
    if (announce.has_applied) {
      it->has_applied = true;
      it->applied = announce.applied;
      it->applied_gseq = announce.applied_gseq;
    }
    *added = false;
    return;
  }
  MemberState m{contact, announce.shard, now()};
  m.has_applied = announce.has_applied;
  m.applied = announce.applied;
  m.applied_gseq = announce.applied_gseq;
  state.members.push_back(std::move(m));
  ++state.shards[announce.shard].epoch;
  if (options_.naming != nullptr) {
    options_.naming->register_contact(scope, contact);
  }
  *added = true;
}

HorizonMsg MembershipService::stability_horizon(ObjectId scope) const {
  HorizonMsg h;
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) return h;
  h.clock = it->second.horizon;
  h.gseq = it->second.horizon_gseq;
  return h;
}

void MembershipService::update_horizon(ObjectId scope, ScopeState& state) {
  // Candidate floor: element-wise min applied clock (and min gseq) over
  // the data-carrying members that are still live. A member silent past
  // the failure timeout is excluded even if not (yet) evicted — notably
  // the eviction-exempt primary — so one crashed store cannot freeze GC
  // for the whole cluster. On the loopback runtime now() is constant and
  // every member stays included.
  bool any = false;
  coherence::VectorClock candidate;
  std::uint64_t candidate_gseq = 0;
  for (const MemberState& m : state.members) {
    if (!m.has_applied) continue;
    if (now() - m.last_heard > options_.failure_timeout) continue;
    if (!any) {
      candidate = m.applied;
      candidate_gseq = m.applied_gseq;
      any = true;
    } else {
      candidate.floor_with(m.applied);
      candidate_gseq = std::min(candidate_gseq, m.applied_gseq);
    }
  }
  if (!any) return;

  // The floor is monotonic: merge, never replace, so a stale or partial
  // announcement (a fresh joiner that has not applied yet reports
  // has_applied with an empty clock) can stall but not regress it.
  coherence::VectorClock merged = state.horizon;
  merged.merge(candidate);
  bool advanced = false;
  if (!(merged == state.horizon)) {
    state.horizon = std::move(merged);
    advanced = true;
  }
  if (candidate_gseq > state.horizon_gseq) {
    state.horizon_gseq = candidate_gseq;
    advanced = true;
  }
  if (!advanced) return;
  ++stats_.horizon_advances;
  if (options_.metrics != nullptr) {
    options_.metrics->record_horizon_advance();
  }
  HorizonMsg h;
  h.clock = state.horizon;
  h.gseq = state.horizon_gseq;
  std::vector<Address> targets;
  targets.reserve(state.members.size());
  for (const MemberState& m : state.members) {
    targets.push_back(m.contact.address);
  }
  comm_.multicast_with(targets, msg::MsgType::kStabilityHorizon, scope,
                       [&](util::Writer& w) { h.encode(w); });
}

void MembershipService::remove(ObjectId scope, const Address& addr,
                               bool evicted) {
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) return;
  auto& members = it->second.members;
  auto mit = std::find_if(members.begin(), members.end(),
                          [&](const MemberState& m) {
                            return m.contact.address == addr;
                          });
  if (mit == members.end()) return;
  const ShardId shard = mit->shard;
  members.erase(mit);
  ++it->second.shards[shard].epoch;
  if (options_.naming != nullptr) {
    options_.naming->unregister_contact(scope, addr);
  }
  if (evicted) {
    ++stats_.evictions;
  } else {
    ++stats_.leaves;
  }
  broadcast(scope, shard);
}

void MembershipService::sweep() {
  for (auto& [scope, state] : scopes_) {
    // Collect the silent members per shard: each affected shard gets one
    // epoch bump and one broadcast for the whole batch, and untouched
    // shards get neither — hot-shard churn cannot stall cold shards.
    std::map<ShardId, std::vector<Address>> dead;
    for (const MemberState& m : state.members) {
      if (m.contact.is_primary && !options_.evict_primary) continue;
      if (now() - m.last_heard > options_.failure_timeout) {
        dead[m.shard].push_back(m.contact.address);
      }
    }
    for (const auto& [shard, addrs] : dead) {
      auto& members = state.members;
      for (const Address& addr : addrs) {
        std::erase_if(members, [&](const MemberState& m) {
          return m.contact.address == addr;
        });
        if (options_.naming != nullptr) {
          options_.naming->unregister_contact(scope, addr);
        }
        ++stats_.evictions;
      }
      ++state.shards[shard].epoch;
      broadcast(scope, shard);
    }
    // Evictions (and timeouts that have not evicted yet, e.g. a crashed
    // primary) can unblock the GC floor; re-aggregate every sweep.
    update_horizon(scope, state);
  }
}

void MembershipService::broadcast(ObjectId scope, ShardId shard,
                                  const Address* exclude) {
  ++stats_.view_changes;
  if (options_.metrics != nullptr) {
    options_.metrics->record_shard_view_change(shard);
  }
  const View v = snapshot_view(scope, shard);
  GLOBE_CHECK_HOOK(on_view_publish(this, scope, shard, v.epoch));
  std::vector<Address> targets;
  for (const auto& m : v.members) {
    if (exclude != nullptr && m.address == *exclude) continue;
    targets.push_back(m.address);
  }
  auto wit = watchers_.find({scope, shard});
  if (wit != watchers_.end()) {
    targets.insert(targets.end(), wit->second.begin(), wit->second.end());
  }

  ShardGroup& group = scopes_[scope].shards[shard];
  // Diff broadcast: epoch + joined/left instead of the full member list.
  // Only sound when the receivers can have seen the previous epoch —
  // i.e. something was broadcast before and exactly one epoch elapsed
  // since (admit() bumps the epoch without broadcasting only for the
  // join path, which broadcasts immediately after).
  const bool can_delta = options_.view_deltas && group.broadcast_epoch != 0 &&
                         v.epoch == group.broadcast_epoch + 1;
  if (can_delta) {
    ViewDelta d;
    d.object = scope;
    d.shard = shard;
    d.epoch = v.epoch;
    for (const auto& m : v.members) {
      bool had = false;
      for (const auto& prev : group.broadcast_members) {
        if (prev.address == m.address) {
          had = true;
          break;
        }
      }
      if (!had) d.joined.push_back(m);
    }
    for (const auto& prev : group.broadcast_members) {
      if (!v.contains(prev.address)) d.left.push_back(prev.address);
    }
    ++stats_.delta_broadcasts;
    comm_.multicast_with(targets, msg::MsgType::kViewDelta, scope,
                         [&](util::Writer& w) { d.encode(w); });
  } else {
    comm_.multicast_with(targets, msg::MsgType::kViewChange, scope,
                         [&](util::Writer& w) { v.encode(w); });
  }
  group.broadcast_members = v.members;
  group.broadcast_epoch = v.epoch;
}

void MembershipService::on_message(const Address& from,
                                   const msg::EnvelopeView& env) {
  switch (env.type) {
    case msg::MsgType::kMembershipJoin: {
      const MemberAnnounce m = MemberAnnounce::decode(env.body);
      bool added = false;
      admit(env.object, m, &added);
      if (added) {
        ++stats_.joins;
        broadcast(env.object, m.shard, &m.contact.address);
      }
      const View v = snapshot_view(env.object, m.shard);
      comm_.reply_with(from, msg::MsgType::kMembershipJoinAck, env.object,
                       env.request_id, [&](util::Writer& w) { v.encode(w); });
      return;
    }
    case msg::MsgType::kMembershipHeartbeat: {
      const MemberAnnounce m = MemberAnnounce::decode(env.body);
      bool added = false;
      admit(env.object, m, &added);
      if (added) {
        // Heard from a store the view does not contain: it was evicted
        // during a partition (or crashed and recovered) and is back.
        ++stats_.rejoins;
        broadcast(env.object, m.shard);
      }
      // Every heartbeat carries an applied-state piggyback; fold it into
      // the scope's GC floor and push the floor out when it moved.
      update_horizon(env.object, scopes_[env.object]);
      return;
    }
    case msg::MsgType::kMembershipLeave: {
      const LeaveMsg m = LeaveMsg::decode(env.body);
      remove(env.object, m.address, /*evicted=*/false);
      return;
    }
    case msg::MsgType::kViewFetchRequest: {
      // A receiver with an epoch gap (it missed delta broadcasts, e.g.
      // across a partition) re-anchors on the full view.
      ++stats_.view_fetches;
      const ViewFetchMsg m = ViewFetchMsg::decode(env.body);
      const View v = snapshot_view(env.object, m.shard);
      comm_.reply_with(from, msg::MsgType::kViewFetchReply, env.object,
                       env.request_id, [&](util::Writer& w) { v.encode(w); });
      return;
    }
    case msg::MsgType::kMembershipWatch: {
      const WatchMsg m = WatchMsg::decode(env.body);
      auto& list = watchers_[{env.object, m.shard}];
      if (!m.subscribe) {
        std::erase(list, m.watcher);
        return;
      }
      if (std::find(list.begin(), list.end(), m.watcher) == list.end()) {
        list.push_back(m.watcher);
      }
      return;
    }
    default:
      GLOBE_LOG_ERROR("membership", "unexpected message type %s",
                      msg::to_string(env.type));
  }
}

}  // namespace globe::membership
