// Placement service: object -> shard -> ordered contact list.
//
// Layered on naming/: where the NamingServer maps one ObjectId to its
// contact list, the PlacementServer maps the whole object space through
// an epoch-numbered shard Layout (rendezvous hashing + pinned-object
// overrides) to per-shard contact tables. Clients and stores resolve
// object -> shard -> contacts deterministically; a PlacementCache holds
// the full layout + contact tables locally, so after one fetch every
// resolution is a local computation. Watchers receive a version push
// whenever the layout or a shard's contacts change and invalidate their
// cache, re-fetching lazily on the next resolution — the layout-epoch
// invalidation protocol the client binding relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "globe/core/comm.hpp"
#include "globe/naming/contact.hpp"
#include "globe/placement/layout.hpp"

namespace globe::placement {

using core::CommunicationObject;
using core::TransportFactory;
using naming::ContactPoint;
using net::Address;

/// One resolved object: which shard serves it, under which placement
/// state version, and the shard's ordered contact list.
struct Resolution {
  std::uint64_t version = 0;      // placement-state version (layout+contacts)
  std::uint64_t layout_epoch = 0;
  ShardId shard = 0;
  std::vector<ContactPoint> contacts;
};

struct PlacementStats {
  std::uint64_t resolves_served = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t invalidations_sent = 0;
};

/// Server side: owns the layout and the per-shard contact tables.
class PlacementServer {
 public:
  PlacementServer(const TransportFactory& factory, sim::Simulator* sim);
  ~PlacementServer();

  [[nodiscard]] Address address() const { return comm_.local_address(); }

  /// Installs a new layout (epoch must advance) and notifies watchers.
  void set_layout(Layout layout);
  [[nodiscard]] const Layout& layout() const { return layout_; }

  /// Placement-state version: bumped on every layout or contact change.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  void register_contact(ShardId shard, const ContactPoint& contact);
  void unregister_contact(ShardId shard, const Address& addr);
  [[nodiscard]] std::vector<ContactPoint> shard_contacts(ShardId shard) const;

  [[nodiscard]] Resolution resolve(ObjectId object) const;

  [[nodiscard]] const PlacementStats& stats() const { return stats_; }

 private:
  void on_message(const Address& from, const msg::EnvelopeView& env);
  void encode_state(util::Writer& w) const;
  void notify_watchers();

  CommunicationObject comm_;
  Layout layout_;
  std::map<ShardId, std::vector<ContactPoint>> contacts_;
  std::uint64_t version_ = 1;
  std::vector<Address> watchers_;
  PlacementStats stats_;
};

/// Client side: caches the full placement state (layout + contact
/// tables) and resolves locally. `ensure` refreshes the cache when it is
/// empty or has been invalidated by a version push from the server.
class PlacementCache {
 public:
  using EnsureHandler = std::function<void(bool ok)>;

  PlacementCache(const TransportFactory& factory, sim::Simulator* sim,
                 Address server);
  ~PlacementCache();

  [[nodiscard]] Address address() const { return comm_.local_address(); }

  /// Subscribes to invalidation pushes and performs the initial fetch.
  void start();

  /// Version of the cached state; 0 until the first fetch completes.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] bool fresh() const { return version_ != 0 && !stale_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }

  /// Local resolution from the cached state; nullopt before the first
  /// fetch. Stale state still resolves (callers rebind on failure).
  [[nodiscard]] std::optional<Resolution> resolve(ObjectId object) const;

  /// Invokes `cb(true)` once the cache is fresh, fetching if necessary.
  void ensure(EnsureHandler cb);

  /// Drops freshness; the next ensure() re-fetches.
  void invalidate();

  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }

 private:
  void on_message(const Address& from, const msg::EnvelopeView& env);
  void fetch();

  CommunicationObject comm_;
  Address server_;
  Layout layout_;
  std::map<ShardId, std::vector<ContactPoint>> contacts_;
  std::uint64_t version_ = 0;
  bool stale_ = true;
  bool fetch_in_flight_ = false;
  std::uint64_t refreshes_ = 0;
  std::uint64_t invalidations_ = 0;
  std::vector<EnsureHandler> waiters_;
};

}  // namespace globe::placement
