#include "globe/placement/service.hpp"

#include <algorithm>
#include <utility>

#include "globe/check/monitor.hpp"
#include "globe/util/assert.hpp"
#include "globe/util/log.hpp"

namespace globe::placement {

// ---------------------------------------------------------------------------
// PlacementServer

PlacementServer::PlacementServer(const TransportFactory& factory,
                                 sim::Simulator* sim)
    : comm_(factory, sim) {
  comm_.set_delivery_handler(
      [this](const Address& from, const msg::EnvelopeView& env) {
        on_message(from, env);
      });
}

void PlacementServer::set_layout(Layout layout) {
  GLOBE_ASSERT_MSG(layout.epoch > layout_.epoch,
                   "layout epoch must advance");
  layout_ = std::move(layout);
  ++version_;
  notify_watchers();
}

void PlacementServer::register_contact(ShardId shard,
                                       const ContactPoint& contact) {
  auto& list = contacts_[shard];
  auto it = std::find_if(list.begin(), list.end(), [&](const ContactPoint& c) {
    return c.address == contact.address;
  });
  if (it != list.end()) {
    if (*it == contact) return;  // no change, no invalidation
    *it = contact;
  } else {
    list.push_back(contact);
  }
  ++version_;
  notify_watchers();
}

void PlacementServer::unregister_contact(ShardId shard, const Address& addr) {
  auto it = contacts_.find(shard);
  if (it == contacts_.end()) return;
  const auto erased = std::erase_if(it->second, [&](const ContactPoint& c) {
    return c.address == addr;
  });
  if (erased == 0) return;
  ++version_;
  notify_watchers();
}

std::vector<ContactPoint> PlacementServer::shard_contacts(
    ShardId shard) const {
  auto it = contacts_.find(shard);
  return it == contacts_.end() ? std::vector<ContactPoint>{} : it->second;
}

Resolution PlacementServer::resolve(ObjectId object) const {
  Resolution res;
  res.version = version_;
  res.layout_epoch = layout_.epoch;
  res.shard = layout_.shard_of(object);
  res.contacts = shard_contacts(res.shard);
  return res;
}

void PlacementServer::encode_state(util::Writer& w) const {
  w.u64(version_);
  layout_.encode(w);
  w.varint(contacts_.size());
  for (const auto& [shard, list] : contacts_) {
    w.u32(shard);
    w.varint(list.size());
    for (const auto& c : list) c.encode(w);
  }
}

PlacementServer::~PlacementServer() { check::release(this); }

void PlacementServer::notify_watchers() {
  GLOBE_CHECK_HOOK(on_placement_state(this, version_, layout_.epoch));
  if (watchers_.empty()) return;
  stats_.invalidations_sent += watchers_.size();
  comm_.multicast_with(
      watchers_, msg::MsgType::kPlacementInvalidate, 0,
      [this](util::Writer& w) { w.u64(version_); });
}

void PlacementServer::on_message(const Address& from,
                                 const msg::EnvelopeView& env) {
  switch (env.type) {
    case msg::MsgType::kPlacementFetch: {
      ++stats_.fetches_served;
      comm_.reply_with(from, msg::MsgType::kPlacementFetchReply, env.object,
                       env.request_id,
                       [this](util::Writer& w) { encode_state(w); });
      return;
    }
    case msg::MsgType::kPlacementResolve: {
      ++stats_.resolves_served;
      const Resolution res = resolve(env.object);
      comm_.reply_with(from, msg::MsgType::kPlacementResolveReply, env.object,
                       env.request_id, [&](util::Writer& w) {
                         w.u64(res.version);
                         w.u64(res.layout_epoch);
                         w.u32(res.shard);
                         w.varint(res.contacts.size());
                         for (const auto& c : res.contacts) c.encode(w);
                       });
      return;
    }
    case msg::MsgType::kPlacementWatch: {
      util::Reader r{env.body};
      const bool subscribe = r.boolean();
      auto it = std::find(watchers_.begin(), watchers_.end(), from);
      if (subscribe && it == watchers_.end()) {
        watchers_.push_back(from);
      } else if (!subscribe && it != watchers_.end()) {
        watchers_.erase(it);
      }
      return;
    }
    default:
      GLOBE_LOG_ERROR("placement", "unexpected message type %d",
                      static_cast<int>(env.type));
  }
}

// ---------------------------------------------------------------------------
// PlacementCache

PlacementCache::PlacementCache(const TransportFactory& factory,
                               sim::Simulator* sim, Address server)
    : comm_(factory, sim), server_(server) {
  comm_.set_delivery_handler(
      [this](const Address& from, const msg::EnvelopeView& env) {
        on_message(from, env);
      });
}

PlacementCache::~PlacementCache() { check::release(this); }

void PlacementCache::start() {
  comm_.send_with(server_, msg::MsgType::kPlacementWatch, 0,
                  [](util::Writer& w) { w.boolean(true); });
  fetch();
}

std::optional<Resolution> PlacementCache::resolve(ObjectId object) const {
  if (version_ == 0) return std::nullopt;
  Resolution res;
  res.version = version_;
  res.layout_epoch = layout_.epoch;
  res.shard = layout_.shard_of(object);
  if (auto it = contacts_.find(res.shard); it != contacts_.end()) {
    res.contacts = it->second;
  }
  return res;
}

void PlacementCache::ensure(EnsureHandler cb) {
  if (fresh()) {
    cb(true);
    return;
  }
  waiters_.push_back(std::move(cb));
  fetch();
}

void PlacementCache::invalidate() {
  if (version_ == 0 || stale_) return;
  stale_ = true;
  ++invalidations_;
}

void PlacementCache::fetch() {
  if (fetch_in_flight_) return;
  fetch_in_flight_ = true;
  comm_.request_with(
      server_, msg::MsgType::kPlacementFetch, 0, [](util::Writer&) {},
      [this](bool ok, const Address&, const msg::EnvelopeView& env) {
        fetch_in_flight_ = false;
        if (ok) {
          // Decode into locals and commit only on success: a truncated or
          // corrupt reply is a failed fetch, not an exception through the
          // comm delivery path or a half-updated cache.
          try {
            util::Reader r{env.body};
            const std::uint64_t version = r.u64();
            Layout layout = Layout::decode(r);
            std::map<ShardId, std::vector<ContactPoint>> contacts;
            const std::uint64_t shards = r.varint();
            for (std::uint64_t i = 0; i < shards; ++i) {
              const ShardId shard = r.u32();
              const std::uint64_t n = r.varint();
              if (n > r.remaining()) {
                throw util::CodecError("contact list exceeds reply");
              }
              auto& list = contacts[shard];
              list.reserve(n);
              for (std::uint64_t j = 0; j < n; ++j) {
                list.push_back(ContactPoint::decode(r));
              }
            }
            version_ = version;
            layout_ = std::move(layout);
            contacts_ = std::move(contacts);
            stale_ = false;
            ++refreshes_;
            GLOBE_CHECK_HOOK(
                on_placement_state(this, version_, layout_.epoch));
          } catch (const util::CodecError&) {
            ok = false;
          }
        }
        auto waiters = std::move(waiters_);
        waiters_.clear();
        for (auto& cb : waiters) cb(ok);
      });
}

void PlacementCache::on_message(const Address& from,
                                const msg::EnvelopeView& env) {
  (void)from;
  if (env.type != msg::MsgType::kPlacementInvalidate) {
    GLOBE_LOG_ERROR("placement", "unexpected message type %d",
                    static_cast<int>(env.type));
    return;
  }
  util::Reader r{env.body};
  const std::uint64_t version = r.u64();
  if (version != version_) invalidate();
}

}  // namespace globe::placement
