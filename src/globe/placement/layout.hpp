// Shard layout: the deterministic object -> shard map.
//
// Globe's object space is partitioned into shards, each served by a
// subgroup of stores. The mapping is rendezvous (highest-random-weight)
// hashing over an explicit, epoch-numbered layout: every node holding
// the same layout epoch computes the identical object -> shard mapping
// with no communication, and growing the layout from N to N+1 shards
// remaps only the objects whose top-scoring shard is the new one —
// about 1/(N+1) of the object space, the classic minimal-movement
// property. A small directory of overrides pins individual objects to a
// specific shard (e.g. an object co-located with its master site)
// without disturbing the hashed remainder.
#pragma once

#include <cstdint>
#include <map>

#include "globe/util/buffer.hpp"
#include "globe/util/ids.hpp"

namespace globe::placement {

struct Layout {
  std::uint64_t epoch = 0;       // bumped on every layout change
  std::uint32_t shard_count = 1;
  std::uint64_t salt = 0x676c6f62655348ULL;  // per-deployment hash seed
  std::map<ObjectId, ShardId> overrides;     // pinned objects (directory)

  friend bool operator==(const Layout&, const Layout&) = default;

  /// Rendezvous score of `object` on `shard`; exposed for tests.
  [[nodiscard]] static std::uint64_t score(std::uint64_t salt, ObjectId object,
                                           ShardId shard) {
    // splitmix64 finalizer over the (salt, object, shard) triple.
    std::uint64_t z = salt ^ (object * 0x9E3779B97F4A7C15ULL) ^
                      (static_cast<std::uint64_t>(shard) + 1) *
                          0xD1B54A32D192ED03ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  [[nodiscard]] ShardId shard_of(ObjectId object) const {
    if (auto it = overrides.find(object); it != overrides.end()) {
      return it->second;
    }
    if (shard_count <= 1) return 0;
    ShardId best = 0;
    std::uint64_t best_score = score(salt, object, 0);
    for (ShardId s = 1; s < shard_count; ++s) {
      const std::uint64_t sc = score(salt, object, s);
      if (sc > best_score) {
        best_score = sc;
        best = s;
      }
    }
    return best;
  }

  void encode(util::Writer& w) const {
    w.u64(epoch);
    w.u32(shard_count);
    w.u64(salt);
    w.varint(overrides.size());
    for (const auto& [object, shard] : overrides) {
      w.u64(object);
      w.u32(shard);
    }
  }

  static Layout decode(util::Reader& r) {
    Layout l;
    l.epoch = r.u64();
    l.shard_count = r.u32();
    l.salt = r.u64();
    const std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const ObjectId object = r.u64();
      l.overrides[object] = r.u32();
    }
    return l;
  }
};

}  // namespace globe::placement
