// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (network jitter, loss,
// workload generation) draws from an explicitly seeded Rng so that every
// experiment and property test is reproducible from its seed. We use
// xoshiro256** seeded via splitmix64, the standard combination.
#pragma once

#include <cstdint>
#include <limits>

#include "globe/util/assert.hpp"

namespace globe::util {

/// splitmix64 step; used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEF1234ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    GLOBE_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    GLOBE_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child generator (for per-component streams).
  Rng fork() { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace globe::util
