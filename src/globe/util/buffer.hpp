// Byte buffers and a small bounds-checked binary codec.
//
// All wire traffic in the library — invocation messages, replication
// protocol messages, naming requests — is encoded with Writer and decoded
// with Reader. The format is deliberately simple and deterministic:
//   * fixed-width little-endian integers,
//   * LEB128-style varints for lengths and optional compactness,
//   * length-prefixed strings / byte blobs.
// Reader throws CodecError on any out-of-bounds or malformed read, so a
// corrupted or truncated message can never silently yield garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace globe::util {

/// Error thrown by Reader on malformed or truncated input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Owned byte buffer used for all message payloads.
using Buffer = std::vector<std::byte>;

/// View over immutable bytes.
using BytesView = std::span<const std::byte>;

/// Immutable ref-counted buffer, shared across consumers without
/// copying: cached document snapshots, fan-out message bodies. A null
/// SharedBuffer means "no bytes".
using SharedBuffer = std::shared_ptr<const Buffer>;

[[nodiscard]] inline BytesView view_of(const SharedBuffer& b) {
  return b == nullptr ? BytesView{} : BytesView(*b);
}

inline Buffer to_buffer(std::string_view s) {
  Buffer b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

/// Explicit copy of a borrowed view, for the rare handler that must
/// retain bytes beyond the life of the receive buffer.
inline Buffer to_buffer(BytesView b) { return Buffer(b.begin(), b.end()); }

inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Appends binary data to a Buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(Buffer initial) : out_(std::move(initial)) {}

  /// Pre-sizes the underlying buffer; senders that know the rough
  /// message size avoid reallocation during encoding.
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }

  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Unsigned LEB128 varint; used for lengths.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  void bytes(BytesView b) {
    varint(b.size());
    raw(b);
  }

  void str(std::string_view s) {
    varint(s.size());
    out_.insert(out_.end(), reinterpret_cast<const std::byte*>(s.data()),
                reinterpret_cast<const std::byte*>(s.data() + s.size()));
  }

  /// Appends bytes without a length prefix.
  void raw(BytesView b) { out_.insert(out_.end(), b.begin(), b.end()); }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] Buffer take() { return std::move(out_); }
  [[nodiscard]] const Buffer& view() const { return out_; }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }

  Buffer out_;
};

/// Reads binary data from a byte view with bounds checking.
class Reader {
 public:
  explicit Reader(BytesView in) : in_(in) {}
  explicit Reader(const Buffer& in) : in_(in) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }

  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CodecError("invalid boolean encoding");
    return v == 1;
  }

  std::uint64_t varint() {
    std::uint64_t result = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw CodecError("varint too long");
      const std::uint8_t byte = u8();
      result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return result;
  }

  BytesView bytes() {
    const std::uint64_t n = varint();
    need(n);
    BytesView v = in_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  std::string str() {
    BytesView v = bytes();
    return std::string(reinterpret_cast<const char*>(v.data()), v.size());
  }

  Buffer bytes_copy() {
    BytesView v = bytes();
    return Buffer(v.begin(), v.end());
  }

  /// Remaining unread bytes.
  [[nodiscard]] BytesView rest() const { return in_.subspan(pos_); }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == in_.size(); }

  /// Requires all input to have been consumed; call at end of decode.
  void expect_end() const {
    if (!at_end()) throw CodecError("trailing bytes after message");
  }

 private:
  void need(std::uint64_t n) const {
    if (n > in_.size() - pos_) throw CodecError("read past end of buffer");
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(in_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView in_;
  std::size_t pos_ = 0;
};

}  // namespace globe::util
