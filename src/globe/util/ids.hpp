// Shared identifier types used across layers.
//
// These are plain aliases rather than strong types: they cross module
// boundaries constantly (wire encoding, map keys, logging) and the
// naming convention keeps them distinct in practice.
#pragma once

#include <cstdint>

namespace globe {

/// Identifies an address space (a machine/process) in the system.
using NodeId = std::uint32_t;

/// Demultiplexing port within a node; each local object or service binds one.
using PortId = std::uint16_t;

/// Identifies a distributed shared object (a Web document).
using ObjectId = std::uint64_t;

/// Identifies a client process (e.g. a browser or the Web master).
using ClientId = std::uint32_t;

/// Identifies a store replica of an object (node-scoped role instance).
using StoreId = std::uint32_t;

/// Identifies a placement shard: a subgroup of stores hosting a slice of
/// the object space. Single-object deployments live in shard 0.
using ShardId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr StoreId kInvalidStore = 0xFFFFFFFFu;
inline constexpr ShardId kInvalidShard = 0xFFFFFFFFu;

}  // namespace globe
