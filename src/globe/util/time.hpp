// Simulated time types.
//
// The discrete-event simulator advances a virtual clock measured in
// microseconds. Strong types keep simulated durations from being mixed
// with wall-clock values by accident.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace globe::util {

/// Duration in simulated microseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t micros) : micros_(micros) {}

  static constexpr SimDuration micros(std::int64_t v) { return SimDuration(v); }
  static constexpr SimDuration millis(std::int64_t v) {
    return SimDuration(v * 1000);
  }
  static constexpr SimDuration seconds(std::int64_t v) {
    return SimDuration(v * 1'000'000);
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return micros_; }
  [[nodiscard]] constexpr double count_millis() const {
    return static_cast<double>(micros_) / 1000.0;
  }
  [[nodiscard]] constexpr double count_seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(micros_ + o.micros_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(micros_ - o.micros_);
  }
  constexpr SimDuration operator*(std::int64_t k) const {
    return SimDuration(micros_ * k);
  }
  constexpr SimDuration operator/(std::int64_t k) const {
    return SimDuration(micros_ / k);
  }

 private:
  std::int64_t micros_ = 0;
};

/// Absolute simulated time (microseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t count_micros() const { return micros_; }
  [[nodiscard]] constexpr double count_seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(micros_ + d.count_micros());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration(micros_ - o.micros_);
  }

 private:
  std::int64_t micros_ = 0;
};

inline std::string to_string(SimTime t) {
  return std::to_string(t.count_micros()) + "us";
}
inline std::string to_string(SimDuration d) {
  return std::to_string(d.count_micros()) + "us";
}

}  // namespace globe::util
