// Minimal leveled logger.
//
// Logging is off by default (tests and benches must stay quiet); examples
// turn it on to narrate protocol activity. The logger is process-global
// and intentionally simple: printf-style formatting to stderr.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace globe::util {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Returns the mutable global log level.
LogLevel& log_level();

/// Emits a log line if `level` is enabled. printf-style.
void log_line(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace globe::util

#define GLOBE_LOG_ERROR(tag, ...) \
  ::globe::util::log_line(::globe::util::LogLevel::kError, (tag), __VA_ARGS__)
#define GLOBE_LOG_INFO(tag, ...) \
  ::globe::util::log_line(::globe::util::LogLevel::kInfo, (tag), __VA_ARGS__)
#define GLOBE_LOG_DEBUG(tag, ...) \
  ::globe::util::log_line(::globe::util::LogLevel::kDebug, (tag), __VA_ARGS__)
