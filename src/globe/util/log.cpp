#include "globe/util/log.hpp"

namespace globe::util {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

void log_line(LogLevel level, const char* tag, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  const char* prefix = level == LogLevel::kError  ? "E"
                       : level == LogLevel::kInfo ? "I"
                                                  : "D";
  std::fprintf(stderr, "[%s %s] ", prefix, tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace globe::util
