// Move-only callable with small-buffer optimization.
//
// UniqueFunction is the event-core replacement for std::function<void()>:
// the common simulator callbacks (message deliveries capturing a payload
// buffer, timer rearms capturing `this`) fit in the inline storage, so
// scheduling an event performs no heap allocation. Captures larger than
// the inline buffer fall back to a single heap allocation, and move-only
// captures (unique_ptr, moved-in buffers) are supported — something
// std::function cannot hold at all.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace globe::util {

class UniqueFunction {
 public:
  /// Sized for the hot captures: a network delivery closure (router
  /// pointer, two addresses, size, owned payload buffer) is 56 bytes.
  static constexpr std::size_t kInlineSize = 64;

  UniqueFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, UniqueFunction> &&
                std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      relocate_ = &inline_relocate<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &heap_invoke<D>;
      relocate_ = &heap_relocate<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { take(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void reset() {
    if (invoke_ != nullptr) {
      relocate_(storage_, nullptr);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  /// Moves the value into `dst` when non-null, then destroys the source.
  using Relocate = void (*)(void* src, void* dst);
  using Invoke = void (*)(void* src);

  template <typename D>
  static void inline_invoke(void* src) {
    (*std::launder(reinterpret_cast<D*>(src)))();
  }

  template <typename D>
  static void inline_relocate(void* src, void* dst) {
    D* f = std::launder(reinterpret_cast<D*>(src));
    if (dst != nullptr) ::new (dst) D(std::move(*f));
    f->~D();
  }

  template <typename D>
  static void heap_invoke(void* src) {
    (**std::launder(reinterpret_cast<D**>(src)))();
  }

  template <typename D>
  static void heap_relocate(void* src, void* dst) {
    D** p = std::launder(reinterpret_cast<D**>(src));
    if (dst != nullptr) {
      ::new (dst) D*(*p);
    } else {
      delete *p;
    }
  }

  void take(UniqueFunction& other) {
    if (other.invoke_ != nullptr) {
      other.relocate_(other.storage_, storage_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
};

}  // namespace globe::util
