// Lightweight always-on assertion macro for internal invariants.
//
// GLOBE_ASSERT is enabled in all build types: the library is a research
// artifact where silent invariant violations would invalidate experiment
// results, so we prefer a crash with a message over undefined behaviour.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace globe::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "GLOBE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace globe::util

#define GLOBE_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::globe::util::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                   \
  } while (false)

#define GLOBE_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::globe::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (false)
