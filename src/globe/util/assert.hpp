// Lightweight always-on assertion macro for internal invariants.
//
// GLOBE_ASSERT is enabled in all build types: the library is a research
// artifact where silent invariant violations would invalidate experiment
// results, so we prefer a crash with a message over undefined behaviour.
//
// GLOBE_DCHECK is the hot-path variant: it compiles to the same crash
// under GLOBE_CHECKED (the default build, see CMakeLists.txt) and to
// nothing in unchecked release benches — use it where the check itself
// costs measurable time on the apply/merge/encode paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace globe::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "GLOBE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace globe::util

#define GLOBE_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::globe::util::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                   \
  } while (false)

#define GLOBE_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::globe::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (false)

#if defined(GLOBE_CHECKED) && GLOBE_CHECKED
#define GLOBE_DCHECK(expr) GLOBE_ASSERT(expr)
#define GLOBE_DCHECK_MSG(expr, msg) GLOBE_ASSERT_MSG(expr, msg)
#else
// Compiled out: the expression is never evaluated (benches pay nothing),
// but it still parses, so a DCHECK cannot rot behind the option.
#define GLOBE_DCHECK(expr)        \
  do {                            \
    if (false) {                  \
      (void)(expr);               \
    }                             \
  } while (false)
#define GLOBE_DCHECK_MSG(expr, msg) \
  do {                              \
    if (false) {                    \
      (void)(expr);                 \
      (void)(msg);                  \
    }                               \
  } while (false)
#endif
